"""Command-line interface: learn and apply XML transformations.

Usage (also via ``python -m repro``)::

    # Learn from example pairs and save the transformation:
    python -m repro learn --input-dtd in.dtd --output-dtd out.dtd \
        --examples pairs_dir --save transform.json \
        [--fuse] [--compact-lists] [--abstract-values] [--stats]

    # --stats prints the learner's timings and cache counters (compiled
    # sample tables, signature-bucketed merge index, global caches).

    # Apply a saved transformation to one or more documents:
    python -m repro apply --transform transform.json doc.xml
    python -m repro apply --transform transform.json a.xml b.xml c.xml
    python -m repro apply --transform transform.json --batch-dir docs/ \
        --output out_dir

    # Batch mode (several documents and/or --batch-dir) translates all
    # encoded documents in one compiled-engine sweep; failures are
    # reported per document without aborting the batch.  Add --jobs N to
    # shard the sweep across N worker processes.

    # Stream mode: one file (or -) whose root element wraps the
    # documents; they are parsed incrementally and transformed without
    # materializing the stream:
    python -m repro apply --transform transform.json --stream batch.xml \
        --jobs 4 --output out_dir

    # The serve command is the same streaming engine with throughput
    # statistics — point it at a stream file or stdin:
    python -m repro serve --transform transform.json --input batch.xml \
        --jobs 4 --chunk-docs 64 --output out_dir --stats

    # Serve a directory of saved models over TCP (name@version keys,
    # JSON-lines protocol, micro-batching, hot reload via the protocol's
    # reload op).  All chatter goes to stderr:
    python -m repro server --models models_dir --port 7455 --jobs 4

    # Apply through a running server instead of loading locally
    # (--transform names a served model, documents pass through as-is):
    python -m repro apply --remote localhost:7455 --transform mymodel \
        doc.xml
    python -m repro apply --remote localhost:7455 --transform mymodel \
        --stream batch.xml --output out_dir

    # Compose two saved transformations (apply the first, then the
    # second) into a new bundle:
    python -m repro compose --first clean.json --second render.json \
        --save pipeline.json

    # Fuse a whole pipeline into one single-pass machine (counts go to
    # stderr; without --save the fused artifact JSON goes to stdout):
    python -m repro compose --chain clean.json render.json index.json \
        --earliest --save pipeline.json

    # Show a saved transducer as an XSLT-like stylesheet:
    python -m repro show --transform transform.json

    # JSON bundles (repro/json-transformation@1) load transparently:
    # apply/serve auto-detect the format, parse documents as JSON, and
    # render canonical single-line JSON.  Streams are JSON lines:
    python -m repro apply --transform rename.json doc.json
    python -m repro apply --transform rename.json --stream docs.jsonl
    python -m repro apply --remote localhost:7455 --format json \
        --transform rename-json doc.json

The examples directory contains pairs ``NAME.in.xml`` / ``NAME.out.xml``.
The saved artifact is a single JSON file bundling the transducer, the
domain automaton, both DTDs, and the encoding flags.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.json.jsonio import parse_json, serialize_json
from repro.obs.trace import NULL_TRACE, new_trace, render_trace_dict
from repro.json.pipeline import (
    JSON_BUNDLE_FORMAT,
    JsonTransformation,
    json_transformation_from_bundle,
)
from repro.serialize import dtop_from_data, dtop_to_data, dtta_from_data, dtta_to_data
from repro.xml.dtd import parse_dtd
from repro.xml.encode import DTDEncoder
from repro.xml.pipeline import XMLTransformation, learn_xml_transformation
from repro.xml.unranked import UTree
from repro.xml.xmlio import parse_xml, serialize_xml
from repro.xml.xslt import to_xslt

BUNDLE_FORMAT = "repro/xml-transformation@1"


def _load_examples(directory: Path) -> List[Tuple[UTree, UTree]]:
    pairs = []
    for input_path in sorted(directory.glob("*.in.xml")):
        output_path = input_path.with_name(
            input_path.name.replace(".in.xml", ".out.xml")
        )
        if not output_path.exists():
            raise ReproError(f"missing output document for {input_path.name}")
        pairs.append(
            (
                parse_xml(input_path.read_text(), ignore_attributes=True),
                parse_xml(output_path.read_text(), ignore_attributes=True),
            )
        )
    if not pairs:
        raise ReproError(f"no *.in.xml examples found in {directory}")
    return pairs


def transformation_to_bundle(transformation: XMLTransformation) -> dict:
    """The JSON bundle dict of a transformation (transducer + DTDs + flags)."""
    return {
        "format": BUNDLE_FORMAT,
        "transducer": dtop_to_data(transformation.transducer),
        "domain": dtta_to_data(transformation.domain),
        "input_dtd": transformation.input_encoder.dtd.describe(),
        "input_start": transformation.input_encoder.dtd.start,
        "output_dtd": transformation.output_encoder.dtd.describe(),
        "output_start": transformation.output_encoder.dtd.start,
        "flags": {
            "fuse_input": transformation.input_encoder.fuse,
            "fuse_output": transformation.output_encoder.fuse,
            "compact_lists": transformation.input_encoder.compact_lists,
            "abstract_values": transformation.input_encoder.abstract_values,
        },
    }


def save_transformation(transformation: XMLTransformation, path: Path) -> None:
    """Persist a learned transformation (transducer + DTDs + flags)."""
    bundle = transformation_to_bundle(transformation)
    path.write_text(json.dumps(bundle, indent=2, ensure_ascii=False))


def load_transformation(path: Path) -> XMLTransformation:
    """Load a transformation saved by :func:`save_transformation`."""
    bundle = json.loads(path.read_text())
    if bundle.get("format") != BUNDLE_FORMAT:
        raise ReproError(f"{path} is not a {BUNDLE_FORMAT} bundle")
    return transformation_from_bundle(bundle)


def load_any_transformation(path: Path):
    """Load an XML or JSON transformation bundle, dispatching on format."""
    bundle = json.loads(path.read_text())
    format_key = bundle.get("format") if isinstance(bundle, dict) else None
    if format_key == BUNDLE_FORMAT:
        return transformation_from_bundle(bundle)
    if format_key == JSON_BUNDLE_FORMAT:
        return json_transformation_from_bundle(bundle)
    raise ReproError(
        f"{path} is neither a {BUNDLE_FORMAT} nor a "
        f"{JSON_BUNDLE_FORMAT} bundle"
    )


def transformation_from_bundle(bundle: dict) -> XMLTransformation:
    """Rebuild a transformation from an already-parsed bundle dict."""
    flags = bundle["flags"]
    input_encoder = DTDEncoder(
        parse_dtd(bundle["input_dtd"], start=bundle["input_start"]),
        fuse=flags["fuse_input"],
        compact_lists=flags["compact_lists"],
        abstract_values=flags["abstract_values"],
    )
    output_encoder = DTDEncoder(
        parse_dtd(bundle["output_dtd"], start=bundle["output_start"]),
        fuse=flags["fuse_output"],
        compact_lists=flags["compact_lists"],
        abstract_values=flags["abstract_values"],
    )
    return XMLTransformation(
        transducer=dtop_from_data(bundle["transducer"]),
        input_encoder=input_encoder,
        output_encoder=output_encoder,
        domain=dtta_from_data(bundle["domain"]),
    )


def _cmd_learn(args: argparse.Namespace) -> int:
    input_dtd = parse_dtd(Path(args.input_dtd).read_text())
    output_dtd = parse_dtd(Path(args.output_dtd).read_text())
    examples = _load_examples(Path(args.examples))
    transformation = learn_xml_transformation(
        input_dtd,
        output_dtd,
        examples,
        fuse_input=args.fuse,
        fuse_output=args.fuse,
        compact_lists=args.compact_lists,
        abstract_values=args.abstract_values,
    )
    print(
        f"learned {transformation.num_states} states / "
        f"{transformation.num_rules} rules from {len(examples)} examples"
    )
    if args.stats:
        _print_learning_stats(transformation)
    if args.save:
        save_transformation(transformation, Path(args.save))
        print(f"saved to {args.save}")
    return 0


def _print_learning_stats(transformation: XMLTransformation) -> None:
    """Report the learner's timing and cache counters (``learn --stats``)."""
    from repro import api

    learned = transformation.learned
    stats = learned.stats if learned is not None else {}
    if stats:
        print(
            f"stats: RPNI total {stats['total_s'] * 1e3:.1f} ms "
            f"(validate {stats['validate_s'] * 1e3:.1f} ms, "
            f"merge loop {stats['loop_s'] * 1e3:.1f} ms), "
            f"{stats['ok_states']} OK states, {stats['merges']} merges"
        )
        tables = stats.get("tables")
        if tables:
            print(
                f"stats: sample tables built {tables['builds']}, "
                f"extended {tables['extends']}, hits {tables['hits']}, "
                f"misses {tables['misses']}, refreshes {tables['refreshes']}"
            )
        merge_index = stats.get("merge_index")
        if merge_index:
            print(
                f"stats: merge index {merge_index['lookups']} lookups, "
                f"{merge_index['signature_hits']} signature hits, "
                f"{merge_index['entries_probed']} residual entries probed"
            )
    for name, counters in api.cache_stats().items():
        line = ", ".join(f"{key} {value}" for key, value in counters.items())
        print(f"stats: {name}: {line}")


def _resolve_format(args: argparse.Namespace, transformation=None) -> str:
    """The document format of this invocation: ``"xml"`` or ``"json"``.

    A loaded transformation decides; an explicit ``--format`` must agree
    with it.  Without a transformation (``--remote``, where the server
    parses in the model's own syntax) ``auto`` means XML, the historical
    default — pass ``--format json`` for JSON globbing and extensions.
    """
    chosen = getattr(args, "format", None) or "auto"
    actual = None
    if isinstance(transformation, JsonTransformation):
        actual = "json"
    elif isinstance(transformation, XMLTransformation):
        actual = "xml"
    if chosen == "auto":
        return actual or "xml"
    if actual is not None and chosen != actual:
        raise ReproError(
            f"--format {chosen} does not match the loaded bundle "
            f"(a {actual} transformation)"
        )
    return chosen


def _parse_document_text(text: str, doc_format: str):
    if doc_format == "json":
        return parse_json(text)
    return parse_xml(text, ignore_attributes=True)


def _render_document(document, doc_format: str) -> str:
    if doc_format == "json":
        return serialize_json(document)
    return serialize_xml(document)


def _collect_documents(
    args: argparse.Namespace, doc_format: str = "xml"
) -> List[Path]:
    paths = [Path(p) for p in args.documents]
    if args.batch_dir:
        directory = Path(args.batch_dir)
        if not directory.is_dir():
            raise ReproError(f"--batch-dir {directory} is not a directory")
        # glob order is filesystem-dependent and Path ordering is
        # platform-dependent (case folding on Windows); sort the plain
        # names so batch order, per-document error reports, and exit
        # codes are stable everywhere.
        pattern = "*.json" if doc_format == "json" else "*.xml"
        paths.extend(sorted(directory.glob(pattern), key=lambda p: p.name))
    if not paths:
        raise ReproError("no input documents (pass files or --batch-dir)")
    return paths


def _parse_hostport(value: str) -> Tuple[str, int]:
    host, separator, port = value.rpartition(":")
    if not separator or not port.isdigit():
        raise ReproError(
            f"--remote takes HOST:PORT, not {value!r}"
        )
    return host or "127.0.0.1", int(port)


def _apply_remote(args: argparse.Namespace) -> int:
    """Client mode: ship documents to a running ``repro server``.

    ``--transform`` names a served model (``name`` or ``name@version``);
    document payloads pass through verbatim — the server parses and
    renders in the model's own syntax, so outputs (and error messages)
    are identical to the local path.
    """
    from repro.server import ServerClient

    host, port = _parse_hostport(args.remote)
    model = args.transform
    doc_format = _resolve_format(args)
    extension = "json" if doc_format == "json" else "xml"
    with ServerClient(host, port) as client:
        if args.stream:
            if args.batch_dir:
                raise ReproError(
                    "--stream and --batch-dir are mutually exclusive"
                )
            if args.trace:
                raise ReproError(
                    "--trace does not support --stream (trace single "
                    "documents)"
                )
            if len(args.documents) != 1:
                raise ReproError("--stream takes exactly one stream file (or -)")
            source = args.documents[0]
            if source == "-":
                payload = sys.stdin.buffer.read()
            else:
                payload = Path(source).read_bytes()
            out_dir = _ensure_output_dir(args.output)
            failures = count = 0
            for index, outcome in enumerate(
                client.transform_stream(model, payload)
            ):
                count += 1
                if isinstance(outcome, Exception):
                    failures += 1
                    print(
                        f"error: document #{index + 1}: {outcome}",
                        file=sys.stderr,
                    )
                    continue
                if out_dir is not None:
                    (
                        out_dir / f"doc{index + 1:06d}.out.{extension}"
                    ).write_text(outcome + "\n")
                elif doc_format == "json":
                    print(outcome)
                else:
                    print(f"<!-- document #{index + 1} -->")
                    print(outcome)
            print(
                f"{count - failures}/{count} documents transformed"
                + (f", {failures} failed" if failures else ""),
                file=sys.stderr,
            )
            return 1 if failures else 0

        paths = _collect_documents(args, doc_format)
        if len(paths) == 1 and not args.batch_dir:
            if args.trace:
                output, trace = client.transform_traced(
                    model, paths[0].read_text()
                )
                print(render_trace_dict(trace), file=sys.stderr)
            else:
                output = client.transform(model, paths[0].read_text())
            if args.output:
                Path(args.output).write_text(output + "\n")
            else:
                print(output)
            return 0

        if args.trace:
            raise ReproError(
                "--trace over --remote traces one document at a time"
            )

        out_dir = _ensure_output_dir(args.output)
        failures = 0
        written: set = set()
        for path in paths:
            try:
                outcome = client.try_transform(model, path.read_text())
            except OSError as error:
                outcome = error
            if isinstance(outcome, Exception):
                failures += 1
                print(f"error: {path}: {outcome}", file=sys.stderr)
                continue
            if out_dir is not None:
                name = f"{path.stem}.out.{extension}"
                serial = 1
                while name in written:
                    name = f"{path.stem}.{serial}.out.{extension}"
                    serial += 1
                written.add(name)
                (out_dir / name).write_text(outcome + "\n")
            elif doc_format == "json":
                print(outcome)
            else:
                print(f"<!-- {path} -->")
                print(outcome)
        print(
            f"{len(paths) - failures}/{len(paths)} documents transformed"
            + (f", {failures} failed" if failures else ""),
            file=sys.stderr,
        )
        return 1 if failures else 0


def _ensure_output_dir(output: Optional[str]) -> Optional[Path]:
    if not output:
        return None
    out_dir = Path(output)
    if out_dir.exists() and not out_dir.is_dir():
        raise ReproError(f"--output {out_dir} must be a directory here")
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir


def _cmd_apply(args: argparse.Namespace) -> int:
    if args.remote:
        return _apply_remote(args)
    transformation = load_any_transformation(Path(args.transform))
    doc_format = _resolve_format(args, transformation)
    extension = "json" if doc_format == "json" else "xml"
    if args.stream:
        if args.batch_dir:
            raise ReproError("--stream and --batch-dir are mutually exclusive")
        if args.trace:
            raise ReproError(
                "--trace does not support --stream (trace single "
                "documents or a --batch-dir batch)"
            )
        if len(args.documents) != 1:
            raise ReproError("--stream takes exactly one stream file (or -)")
        return _serve_stream(
            transformation,
            args.documents[0],
            jobs=args.jobs,
            output=args.output,
            chunk_docs=args.chunk_docs,
            stats=False,
            backend=args.backend,
            doc_format=doc_format,
        )
    paths = _collect_documents(args, doc_format)

    if len(paths) == 1 and not args.batch_dir:
        # Single-document mode: unchanged contract (raises via main()).
        trace = new_trace() if args.trace else NULL_TRACE
        with trace.span("decode", format=doc_format):
            document = _parse_document_text(paths[0].read_text(), doc_format)
        with trace.span("execute"):
            result = transformation.apply(document)
        with trace.span("encode", format=doc_format):
            output = _render_document(result, doc_format)
        if trace:
            print(trace.render(), file=sys.stderr)
        if args.output:
            Path(args.output).write_text(output + "\n")
        else:
            print(output)
        return 0

    # Batch mode: validate the output target first (before any work),
    # parse what parses, run everything through the engine's run_batch
    # in one sweep, report per-document errors and continue.
    out_dir: Optional[Path] = None
    if args.output:
        out_dir = Path(args.output)
        if out_dir.exists() and not out_dir.is_dir():
            raise ReproError(
                f"--output {out_dir} must be a directory in batch mode"
            )
        out_dir.mkdir(parents=True, exist_ok=True)

    documents: List[Optional[object]] = []
    outcomes: List[object] = [None] * len(paths)
    for index, path in enumerate(paths):
        try:
            documents.append(
                _parse_document_text(path.read_text(), doc_format)
            )
        except (OSError, ValueError, ReproError) as error:
            # ValueError covers UnicodeDecodeError on non-UTF-8 files.
            outcomes[index] = error
            documents.append(None)
        except RecursionError:
            outcomes[index] = ReproError(
                "document parsing exceeded the recursion limit"
            )
            documents.append(None)
    trace = new_trace(name="batch") if args.trace else NULL_TRACE
    batch = iter(
        transformation.apply_batch(
            [d for d in documents if d is not None],
            jobs=args.jobs,
            backend=args.backend,
            trace=trace,
        )
    )
    for index, document in enumerate(documents):
        if document is not None:
            outcomes[index] = next(batch)
    if trace:
        print(trace.render(), file=sys.stderr)
    failures = 0
    written: set = set()
    for path, outcome in zip(paths, outcomes):
        if isinstance(outcome, Exception):
            failures += 1
            print(f"error: {path}: {outcome}", file=sys.stderr)
            continue
        output = _render_document(outcome, doc_format)
        if out_dir is not None:
            # Same-stem inputs from different directories must not
            # silently overwrite each other; dedupe the final filename.
            name = f"{path.stem}.out.{extension}"
            serial = 1
            while name in written:
                name = f"{path.stem}.{serial}.out.{extension}"
                serial += 1
            written.add(name)
            (out_dir / name).write_text(output + "\n")
        elif doc_format == "json":
            print(output)
        else:
            print(f"<!-- {path} -->")
            print(output)
    print(
        f"{len(paths) - failures}/{len(paths)} documents transformed"
        + (f", {failures} failed" if failures else ""),
        file=sys.stderr,
    )
    return 1 if failures else 0


def _serve_stream(
    transformation,
    source: str,
    jobs: Optional[int],
    output: Optional[str],
    chunk_docs: int,
    stats: bool,
    backend: Optional[str] = None,
    doc_format: str = "xml",
) -> int:
    """Shared engine of ``serve`` and ``apply --stream``.

    Parses the stream incrementally (XML: documents are the direct
    children of the stream's root element; JSON: one document per
    line), transforms it chunk-wise — sharded across ``jobs`` workers
    when requested — and writes outcomes as they complete.
    Per-document failures are reported without aborting; the exit code
    is 1 when any document failed.
    """
    from repro.serve.stream import iter_stream_documents

    from repro.json.jsonio import iter_json_documents

    out_dir: Optional[Path] = None
    if output:
        out_dir = Path(output)
        if out_dir.exists() and not out_dir.is_dir():
            raise ReproError(f"--output {out_dir} must be a directory")
        out_dir.mkdir(parents=True, exist_ok=True)

    iterate = (
        iter_json_documents if doc_format == "json" else iter_stream_documents
    )
    if source == "-":
        documents = iterate(sys.stdin.buffer)
    else:
        documents = iterate(Path(source))
    extension = "json" if doc_format == "json" else "xml"

    count = 0
    failures = 0
    start = time.perf_counter()
    for index, outcome in enumerate(
        transformation.apply_stream(
            documents, jobs=jobs, chunk_docs=chunk_docs, backend=backend
        )
    ):
        count += 1
        if isinstance(outcome, Exception):
            failures += 1
            print(f"error: document #{index + 1}: {outcome}", file=sys.stderr)
            continue
        rendered = _render_document(outcome, doc_format)
        if out_dir is not None:
            (out_dir / f"doc{index + 1:06d}.out.{extension}").write_text(
                rendered + "\n"
            )
        elif doc_format == "json":
            print(rendered)
        else:
            print(f"<!-- document #{index + 1} -->")
            print(rendered)
    elapsed = time.perf_counter() - start
    print(
        f"{count - failures}/{count} documents transformed"
        + (f", {failures} failed" if failures else ""),
        file=sys.stderr,
    )
    if stats:
        rate = count / elapsed if elapsed > 0 else float("inf")
        print(
            f"stats: {count} documents in {elapsed:.2f} s "
            f"({rate:.0f} docs/s, jobs={jobs or 1}, "
            f"chunk={chunk_docs})",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    transformation = load_any_transformation(Path(args.transform))
    return _serve_stream(
        transformation,
        args.input,
        jobs=args.jobs,
        output=args.output,
        chunk_docs=args.chunk_docs,
        stats=args.stats,
        backend=args.backend,
        doc_format=_resolve_format(args, transformation),
    )


def _cmd_server(args: argparse.Namespace) -> int:
    from repro.server import serve_forever

    return serve_forever(
        args.models,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        stats=args.stats,
        metrics=args.metrics,
        log_json=args.log_json,
        backend=args.backend,
        warm=args.warm,
        trace_sample_rate=args.trace_sample_rate,
        slow_ms=args.slow_ms,
    )


def _cmd_compose(args: argparse.Namespace) -> int:
    """Fuse two (``--first``/``--second``) or N (``--chain``) artifacts.

    Reporting goes to **stderr** (state/rule counts, the save
    confirmation); stdout carries only the fused artifact's JSON when
    ``--save`` is omitted, so the command pipes like ``serve --stats``.
    """
    from repro.serialize import dumps as serialize_dumps
    from repro.serialize import from_data as serialize_from_data
    from repro.transducers.compose import compose_chain
    from repro.transducers.dtop import DTOP

    if args.chain:
        if args.first or args.second:
            raise ReproError(
                "--chain cannot be combined with --first/--second"
            )
        paths = [Path(item) for item in args.chain]
        if len(paths) < 2:
            raise ReproError("--chain needs at least two artifacts")
    else:
        if not args.first or not args.second:
            raise ReproError(
                "compose needs either --chain A B ... or both --first "
                "and --second"
            )
        paths = [Path(args.first), Path(args.second)]

    datas = []
    kinds = []
    for path in paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ReproError(f"cannot read {path}: {error}") from None
        datas.append(data)
        is_bundle = (
            isinstance(data, dict) and data.get("format") == BUNDLE_FORMAT
        )
        kinds.append("xml" if is_bundle else "dtop")
    if len(set(kinds)) > 1:
        raise ReproError(
            "cannot mix transformation bundles and raw transducer "
            "artifacts in one chain"
        )
    labels = [path.name for path in paths]

    if kinds[0] == "xml":
        transformations = [transformation_from_bundle(d) for d in datas]
        for index in range(1, len(transformations)):
            left, right = transformations[index - 1], transformations[index]
            if (
                left.output_encoder.dtd.describe()
                != right.input_encoder.dtd.describe()
            ):
                raise ReproError(
                    f"cannot compose: the output DTD of "
                    f"{labels[index - 1]} does not match the input DTD "
                    f"of {labels[index]}"
                )
        transducer = compose_chain(
            [t.transducer for t in transformations],
            earliest=args.earliest,
            labels=labels,
        )
        composed = XMLTransformation(
            transducer=transducer,
            input_encoder=transformations[0].input_encoder,
            output_encoder=transformations[-1].output_encoder,
            domain=transformations[0].domain,
        )
        print(
            f"composed {composed.num_states} states / "
            f"{composed.num_rules} rules",
            file=sys.stderr,
        )
        if args.save:
            save_transformation(composed, Path(args.save))
            print(f"saved to {args.save}", file=sys.stderr)
        else:
            print(
                json.dumps(
                    transformation_to_bundle(composed),
                    indent=2,
                    ensure_ascii=False,
                )
            )
        return 0

    machines = []
    for path, data in zip(paths, datas):
        try:
            machine = serialize_from_data(data)
        except ReproError as error:
            raise ReproError(f"cannot load {path}: {error}") from None
        if not isinstance(machine, DTOP):
            raise ReproError(
                f"{path} holds a {type(machine).__name__}, not a "
                f"transducer"
            )
        machines.append(machine)
    fused = compose_chain(machines, earliest=args.earliest, labels=labels)
    print(
        f"composed {len(fused.states)} states / {len(fused.rules)} rules",
        file=sys.stderr,
    )
    if args.save:
        Path(args.save).write_text(serialize_dumps(fused) + "\n")
        print(f"saved to {args.save}", file=sys.stderr)
    else:
        print(serialize_dumps(fused))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    transformation = load_transformation(Path(args.transform))
    if args.as_xslt:
        print(to_xslt(transformation.transducer))
    else:
        print(transformation.transducer.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learn and apply top-down XML transformations (PODS 2010).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    learn = commands.add_parser("learn", help="learn from example documents")
    learn.add_argument("--input-dtd", required=True)
    learn.add_argument("--output-dtd", required=True)
    learn.add_argument(
        "--examples", required=True, help="directory of NAME.in.xml/NAME.out.xml"
    )
    learn.add_argument("--save", help="write the learned transformation here")
    learn.add_argument("--fuse", action="store_true")
    learn.add_argument("--compact-lists", action="store_true")
    learn.add_argument("--abstract-values", action="store_true")
    learn.add_argument(
        "--stats",
        action="store_true",
        help="print learning timings and cache counters "
        "(sample tables, signature buckets, global caches)",
    )
    learn.set_defaults(func=_cmd_learn)

    apply_cmd = commands.add_parser(
        "apply", help="apply a saved transformation to one or more documents"
    )
    apply_cmd.add_argument("--transform", required=True)
    apply_cmd.add_argument(
        "documents", nargs="*", metavar="document",
        help="XML documents to transform",
    )
    apply_cmd.add_argument(
        "--batch-dir", help="also transform every *.xml file in this directory"
    )
    apply_cmd.add_argument(
        "--output",
        help="output file (single document) or output directory (batch); "
        "batch results are written as NAME.out.xml",
    )
    apply_cmd.add_argument(
        "--jobs",
        type=int,
        help="shard batch translation across N worker processes",
    )
    apply_cmd.add_argument(
        "--stream",
        action="store_true",
        help="treat the single input file (or -) as a document stream: "
        "the direct children of its root element are transformed "
        "incrementally, without materializing the stream",
    )
    apply_cmd.add_argument(
        "--chunk-docs",
        type=int,
        default=64,
        help="documents per dispatched chunk in --stream mode",
    )
    apply_cmd.add_argument(
        "--remote",
        metavar="HOST:PORT",
        help="send documents to a running `repro server` instead of "
        "loading locally; --transform then names a served model "
        "(NAME or NAME@VERSION)",
    )
    apply_cmd.add_argument(
        "--backend",
        help="execution backend (tables/codegen/numpy/auto; default: "
        "$REPRO_BACKEND, then tables)",
    )
    apply_cmd.add_argument(
        "--format",
        choices=("auto", "xml", "json"),
        default="auto",
        help="document format; auto follows the loaded bundle "
        "(--remote defaults to xml). JSON batch dirs glob *.json, "
        "JSON streams are one document per line",
    )
    apply_cmd.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree of the request to stderr (local: "
        "decode/execute/decode phases; --remote: the server-side "
        "breakdown including queue wait and dispatch)",
    )
    apply_cmd.set_defaults(func=_cmd_apply)

    serve = commands.add_parser(
        "serve",
        help="stream-transform a batch stream through the sharded service",
    )
    serve.add_argument("--transform", required=True)
    serve.add_argument(
        "--input",
        required=True,
        help="stream file whose root element wraps the documents, or - "
        "for stdin",
    )
    serve.add_argument(
        "--jobs", type=int, help="worker processes (default: in-process)"
    )
    serve.add_argument(
        "--chunk-docs", type=int, default=64, help="documents per chunk"
    )
    serve.add_argument(
        "--output", help="directory for docNNNNNN.out.xml results"
    )
    serve.add_argument(
        "--stats", action="store_true", help="print throughput statistics"
    )
    serve.add_argument(
        "--backend",
        help="execution backend (tables/codegen/numpy/auto; default: "
        "$REPRO_BACKEND, then tables)",
    )
    serve.add_argument(
        "--format",
        choices=("auto", "xml", "json"),
        default="auto",
        help="document format; auto follows the loaded bundle",
    )
    serve.set_defaults(func=_cmd_serve)

    server = commands.add_parser(
        "server",
        help="serve a directory of saved models over TCP "
        "(JSON-lines protocol, micro-batching, hot reload)",
    )
    server.add_argument(
        "--models",
        required=True,
        help="directory of NAME@VERSION.json model artifacts "
        "(raw transducers or learned transformation bundles)",
    )
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument(
        "--port", type=int, default=7455, help="TCP port (0 picks a free one)"
    )
    server.add_argument(
        "--jobs",
        type=int,
        help="shard each model across N worker processes",
    )
    server.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="documents per coalesced micro-batch (1 disables batching)",
    )
    server.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="bound on the wait a request pays to coalesce",
    )
    server.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admitted-request bound before overload responses",
    )
    server.add_argument(
        "--stats",
        action="store_true",
        help="print server statistics to stderr on shutdown",
    )
    server.add_argument(
        "--metrics",
        action="store_true",
        help="print the final Prometheus metrics exposition to stderr "
        "on shutdown (live scrape: the 'metrics' protocol verb)",
    )
    server.add_argument(
        "--log-json",
        action="store_true",
        help="stream structured one-line JSON events (reloads, shard "
        "crashes/restarts/quarantines) to stderr",
    )
    server.add_argument(
        "--backend",
        help="server-wide execution backend default (tables/codegen/"
        "numpy/auto); per-model 'backend' artifact keys override it",
    )
    server.add_argument(
        "--warm",
        action="store_true",
        help="precompile or cache-load every model's engine (and "
        "prestart worker pools) before accepting traffic; with fresh "
        ".engine sidecars the boot compiles nothing",
    )
    server.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="trace this fraction of transform requests (0..1) and "
        "emit each as a trace.sample event (visible under --log-json)",
    )
    server.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="N",
        help="trace every request and emit a trace.slow event with the "
        "span breakdown for any taking at least N ms end to end",
    )
    server.set_defaults(func=_cmd_server)

    compose_cmd = commands.add_parser(
        "compose",
        help="fuse saved transformations or transducer artifacts into "
        "one single-pass machine",
    )
    compose_cmd.add_argument(
        "--first", help="transformation applied first"
    )
    compose_cmd.add_argument(
        "--second", help="transformation applied second"
    )
    compose_cmd.add_argument(
        "--chain",
        nargs="+",
        metavar="ARTIFACT",
        help="fuse a whole pipeline (2+ files, in application order): "
        "all transformation bundles or all raw repro/dtop@1 artifacts",
    )
    compose_cmd.add_argument(
        "--earliest",
        action="store_true",
        help="earliest-normalize the fused machine",
    )
    compose_cmd.add_argument(
        "--save",
        help="write the composed artifact here (default: the artifact "
        "JSON on stdout; reporting goes to stderr either way)",
    )
    compose_cmd.set_defaults(func=_cmd_compose)

    show = commands.add_parser("show", help="print a saved transducer")
    show.add_argument("--transform", required=True)
    show.add_argument("--as-xslt", action="store_true")
    show.set_defaults(func=_cmd_show)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
