"""Labeled paths (``F``-paths), node-paths, and the path order.

The paper (Section 2) works with *edge paths*: words over
``F# = {(f, i) | f ∈ F^(k), 1 ≤ i ≤ k}``.  A path ``u`` *belongs to* a tree
``s`` (written ``u =| s``) if following the labeled child steps from the
root stays inside ``s`` with matching labels.  An *npath* ``U = u·f``
additionally fixes the label of the node it addresses.

We represent a path as a tuple of :class:`Step` (symbol, 1-based child
index) and an npath as ``(path, symbol)``.

Section 8 fixes a total order on paths — shorter first, then lexicographic
— and lifts it to pairs of paths.  :func:`path_order_key` and
:func:`pair_order_key` implement exactly that order as Python sort keys.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import PathError
from repro.trees.tree import Label, Tree

# A single labeled step (f, i): "from a node labeled f, go to child i".
Step = Tuple[Label, int]
# An F-path: a word over labeled steps.
Path = Tuple[Step, ...]
# An npath u·f: a path plus the label of the addressed node.
NPath = Tuple[Path, Label]

EPSILON: Path = ()


def node_to_path(root: Tree, node: Tuple[int, ...]) -> Path:
    """Convert a Dewey node address into the labeled path reaching it."""
    steps: List[Step] = []
    current = root
    for index in node:
        steps.append((current.label, index))
        current = current.child(index)
    return tuple(steps)


def path_to_nodes(path: Path) -> Tuple[int, ...]:
    """Project a labeled path onto its Dewey node address."""
    return tuple(index for _, index in path)


def belongs(path: Path, root: Tree) -> bool:
    """The paper's ``u =| s``: does the labeled path belong to the tree?"""
    current = root
    for label, index in path:
        if current.label != label or not 1 <= index <= len(current.children):
            return False
        current = current.children[index - 1]
    return True


def npath_belongs(npath: NPath, root: Tree) -> bool:
    """The paper's ``U =| s`` for node-paths: path belongs and label matches."""
    path, label = npath
    current = root
    for step_label, index in path:
        if current.label != step_label or not 1 <= index <= len(current.children):
            return False
        current = current.children[index - 1]
    return current.label == label


def subtree_at_path(root: Tree, path: Path) -> Tree:
    """The subtree ``u⁻¹(s)`` at the end of a labeled path.

    Raises :class:`PathError` if the path does not belong to the tree.
    """
    current = root
    for label, index in path:
        if current.label != label:
            raise PathError(
                f"path expects label {label!r} but tree has {current.label!r}"
            )
        if not 1 <= index <= current.arity:
            raise PathError(
                f"node labeled {current.label!r} has no child #{index}"
            )
        current = current.children[index - 1]
    return current


def subtree_at_node(root: Tree, node: Tuple[int, ...]) -> Tree:
    """The subtree ``π⁻¹(s)`` at a Dewey address."""
    current = root
    for index in node:
        if not 1 <= index <= current.arity:
            raise PathError(f"no node {node} in tree {root}")
        current = current.children[index - 1]
    return current


def try_subtree_at_path(root: Tree, path: Path) -> Optional[Tree]:
    """Like :func:`subtree_at_path` but returns ``None`` when ``u`` ∌ ``s``."""
    current = root
    for label, index in path:
        if current.label != label or not 1 <= index <= len(current.children):
            return None
        current = current.children[index - 1]
    return current


def paths_of(root: Tree) -> Iterator[Path]:
    """All labeled paths belonging to the tree (``paths(s)``), pre-order."""
    stack: List[Tuple[Path, Tree]] = [((), root)]
    while stack:
        path, node = stack.pop()
        yield path
        for i in range(node.arity, 0, -1):
            stack.append((path + ((node.label, i),), node.children[i - 1]))


def npaths_of(root: Tree) -> Iterator[NPath]:
    """All node-paths belonging to the tree (``npaths(s)``), pre-order."""
    stack: List[Tuple[Path, Tree]] = [((), root)]
    while stack:
        path, node = stack.pop()
        yield (path, node.label)
        for i in range(node.arity, 0, -1):
            stack.append((path + ((node.label, i),), node.children[i - 1]))


def parent_npath(npath: NPath) -> NPath:
    """The paper's ``parent``: ``parent(u·(f,i)·f') = u·f``; root is fixed.

    ``parent(ε·f) = ε·f`` would be ill-founded; the paper defines
    ``parent(ε·f) = ε`` — we signal that case by raising, and callers treat
    the root separately (its npath has no parent).
    """
    path, _ = npath
    if not path:
        raise PathError("the root npath has no parent")
    return (path[:-1], path[-1][0])


def _step_key(step: Step) -> Tuple[str, int]:
    label, index = step
    return (str(label), index)


def path_order_key(path: Path) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
    """Sort key for the paper's order ``<`` on paths (Section 8).

    Shorter paths come first; equal lengths compare lexicographically by
    (symbol, child index).  Deleting letters always makes a path smaller,
    as Section 8 requires.
    """
    return (len(path), tuple(_step_key(s) for s in path))


def pair_order_key(pair: Tuple[Path, Path]):
    """Sort key for pairs ``(u, v)``: ``u`` first, then ``v`` (Section 8)."""
    u, v = pair
    return (path_order_key(u), path_order_key(v))
