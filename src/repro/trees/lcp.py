"""The largest-common-prefix operator ``⊔`` and the symbol ``⊥``.

Section 3 of the paper defines, for trees ``t, t'``::

    g(t1,…,tk) ⊔ g'(t1',…,tk') = g(t1 ⊔ t1', …, tk ⊔ tk')   if g = g'
                                = ⊥                           otherwise

``⊔`` is associative, commutative, and idempotent, so it extends to sets.
``⊥`` marks the positions where the compared trees disagree; those
positions are exactly where an earliest transducer places its state calls.

Because trees are interned (:mod:`repro.trees.tree`), the binary ``⊔`` is
memoized globally on the pair of node uids: the earliest-normal-form
fixpoint (:mod:`repro.transducers.earliest`) and the sample operator
``out_S`` (:mod:`repro.learning.sample`) recompute LCPs of the same
subtree pairs over and over, and each distinct pair is now computed once.
The cache is capped (wholesale clear on overflow) so long-running
processes do not grow without bound; :func:`lcp_cache_stats` exposes
hit/miss counters.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import TreeError
from repro.trees.tree import Tree

#: Memo for the binary ``⊔``, keyed by the (sorted) uid pair.  uids are
#: never reused, so stale entries are merely unreachable, never wrong.
_LCP_CACHE: Dict[Tuple[int, int], Tree] = {}
_LCP_CACHE_LIMIT = 1 << 18
_LCP_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def lcp_cache_stats() -> Dict[str, int]:
    """Counters of the ``⊔`` memo cache: ``hits``, ``misses``, ``entries``."""
    return {**_LCP_STATS, "entries": len(_LCP_CACHE)}


def clear_lcp_cache() -> None:
    """Drop all memoized ``⊔`` results and zero the counters."""
    _LCP_CACHE.clear()
    _LCP_STATS["hits"] = 0
    _LCP_STATS["misses"] = 0


class _BottomSymbol:
    """The unique ``⊥`` label.  Rendered as ``⊥`` in terms."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __str__(self) -> str:
        return "⊥"


BOTTOM_SYMBOL = _BottomSymbol()

#: The one-node tree ``⊥`` (rank 0).
BOTTOM = Tree(BOTTOM_SYMBOL, ())


def is_bottom(node: Tree) -> bool:
    """True iff the tree is exactly the ``⊥`` leaf."""
    return node.label is BOTTOM_SYMBOL


def lcp(left: Tree, right: Tree) -> Tree:
    """Binary largest common prefix ``t ⊔ t'`` (Section 3), memoized.

    ``⊥`` behaves as the least element: ``⊥ ⊔ t = ⊥`` because the labels
    differ — exactly the paper's definition, no special case needed.

    Interning makes ``left is right`` the complete equality test, and the
    (commutative) result is memoized on the uid pair, so repeated ``⊔``
    over shared substructure costs one dictionary lookup.
    """
    if left is right:
        return left
    if left.label != right.label or len(left.children) != len(right.children):
        return BOTTOM
    key = (
        (left.uid, right.uid) if left.uid < right.uid else (right.uid, left.uid)
    )
    cached = _LCP_CACHE.get(key)
    if cached is not None:
        _LCP_STATS["hits"] += 1
        return cached
    _LCP_STATS["misses"] += 1
    result = Tree(
        left.label,
        [lcp(a, b) for a, b in zip(left.children, right.children)],
    )
    if len(_LCP_CACHE) >= _LCP_CACHE_LIMIT:
        _LCP_CACHE.clear()
    _LCP_CACHE[key] = result
    return result


def lcp_many(trees: Iterable[Tree]) -> Tree:
    """``⊔ L`` for a non-empty collection ``L`` of trees.

    Raises :class:`TreeError` on an empty collection — the paper leaves
    ``out_τ(u)`` undefined when no tree contains ``u``, and callers must
    treat that case explicitly.
    """
    iterator = iter(trees)
    try:
        result = next(iterator)
    except StopIteration:
        raise TreeError("largest common prefix of an empty set is undefined")
    for item in iterator:
        if is_bottom(result):
            return result
        result = lcp(result, item)
    return result


def bottom_positions(node: Tree) -> Iterator[Tuple[int, ...]]:
    """Dewey addresses of all ``⊥`` leaves, in left-to-right order."""
    stack: List[Tuple[Tuple[int, ...], Tree]] = [((), node)]
    out: List[Tuple[int, ...]] = []
    while stack:
        address, current = stack.pop()
        if is_bottom(current):
            out.append(address)
            continue
        for i in range(len(current.children), 0, -1):
            stack.append((address + (i,), current.children[i - 1]))
    return iter(sorted(out))


def is_prefix_of(prefix: Tree, full: Tree) -> bool:
    """True iff ``prefix ⊑ full``: equal except ``⊥`` may stand for anything."""
    if is_bottom(prefix):
        return True
    if prefix.label != full.label or len(prefix.children) != len(full.children):
        return False
    return all(
        is_prefix_of(a, b) for a, b in zip(prefix.children, full.children)
    )
