"""The largest-common-prefix operator ``⊔`` and the symbol ``⊥``.

Section 3 of the paper defines, for trees ``t, t'``::

    g(t1,…,tk) ⊔ g'(t1',…,tk') = g(t1 ⊔ t1', …, tk ⊔ tk')   if g = g'
                                = ⊥                           otherwise

``⊔`` is associative, commutative, and idempotent, so it extends to sets.
``⊥`` marks the positions where the compared trees disagree; those
positions are exactly where an earliest transducer places its state calls.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.errors import TreeError
from repro.trees.tree import Tree


class _BottomSymbol:
    """The unique ``⊥`` label.  Rendered as ``⊥`` in terms."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __str__(self) -> str:
        return "⊥"


BOTTOM_SYMBOL = _BottomSymbol()

#: The one-node tree ``⊥`` (rank 0).
BOTTOM = Tree(BOTTOM_SYMBOL, ())


def is_bottom(node: Tree) -> bool:
    """True iff the tree is exactly the ``⊥`` leaf."""
    return node.label is BOTTOM_SYMBOL


def lcp(left: Tree, right: Tree) -> Tree:
    """Binary largest common prefix ``t ⊔ t'`` (Section 3).

    ``⊥`` behaves as the least element: ``⊥ ⊔ t = ⊥`` because the labels
    differ — exactly the paper's definition, no special case needed.
    """
    if left is right:
        return left
    if left.label != right.label or left.arity != right.arity:
        return BOTTOM
    if left == right:
        return left
    children = tuple(
        lcp(a, b) for a, b in zip(left.children, right.children)
    )
    return Tree(left.label, children)


def lcp_many(trees: Iterable[Tree]) -> Tree:
    """``⊔ L`` for a non-empty collection ``L`` of trees.

    Raises :class:`TreeError` on an empty collection — the paper leaves
    ``out_τ(u)`` undefined when no tree contains ``u``, and callers must
    treat that case explicitly.
    """
    iterator = iter(trees)
    try:
        result = next(iterator)
    except StopIteration:
        raise TreeError("largest common prefix of an empty set is undefined")
    for item in iterator:
        if is_bottom(result):
            return result
        result = lcp(result, item)
    return result


def bottom_positions(node: Tree) -> Iterator[Tuple[int, ...]]:
    """Dewey addresses of all ``⊥`` leaves, in left-to-right order."""
    stack: List[Tuple[Tuple[int, ...], Tree]] = [((), node)]
    out: List[Tuple[int, ...]] = []
    while stack:
        address, current = stack.pop()
        if is_bottom(current):
            out.append(address)
            continue
        for i in range(current.arity, 0, -1):
            stack.append((address + (i,), current.children[i - 1]))
    return iter(sorted(out))


def is_prefix_of(prefix: Tree, full: Tree) -> bool:
    """True iff ``prefix ⊑ full``: equal except ``⊥`` may stand for anything."""
    if is_bottom(prefix):
        return True
    if prefix.label != full.label or prefix.arity != full.arity:
        return False
    return all(
        is_prefix_of(a, b) for a, b in zip(prefix.children, full.children)
    )
