"""Hash-consed immutable ordered ranked trees and a term syntax for them.

Trees are the ground terms of Section 2: a label together with an ordered
tuple of child trees.  Labels are arbitrary hashable objects — plain
strings for input/output symbols, but also the ``⊥`` sentinel of
:mod:`repro.trees.lcp` and the state calls ``⟨q, x_i⟩`` used in transducer
right-hand sides (:mod:`repro.transducers.rhs`).

Interning (hash-consing)
------------------------

Every :class:`Tree` is *interned*: constructing a tree that is structurally
equal to one that already exists returns the **same object**.  The global
intern table is a weak-value dictionary, so trees are reclaimed as soon as
no client references them.  Consequences that the rest of the code base
relies on:

* **O(1) equality** — two live trees are structurally equal iff they are
  the same object, so ``==`` degenerates to an identity check;
* **stable node ids** — every distinct tree carries a monotonically
  increasing :attr:`Tree.uid` that is never reused, safe to use as a memo
  key even after the tree is garbage-collected (unlike ``id()``);
* **maximal structural sharing** — repeated subtrees exist once in memory;
  a full binary tree with ``2^n - 1`` nodes built bottom-up from shared
  halves allocates only ``n`` objects.

The non-negotiable caveat: **never mutate a node** (labels included — a
mutable-but-hashable label object must not be changed after use).  Mutation
would corrupt every structurally equal tree in the program at once.
:class:`Tree` enforces immutability of its own attributes by raising
:class:`~repro.errors.TreeError` from ``__setattr__``.

Interning statistics are exposed through :func:`intern_stats` /
:func:`reset_intern_stats`; :func:`interned_count` reports the number of
live distinct trees.  The table assumes single-threaded construction (or
an external lock): it is exactly as thread-safe as a plain dict under the
CPython GIL.

The term syntax is the paper's: ``f(a, g(b, c))``; a one-node tree ``f()``
may be written ``f``.  Labels may be quoted with double quotes so that the
DTD-encoding labels such as ``"(a*,b*)"`` round-trip.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Callable, Dict, Hashable, Iterator, List, Sequence, Tuple

from repro.errors import ParseError, TreeError

Label = Hashable

#: Global intern table: (label, children) → weakref to the unique live
#: Tree.  Weak references let unused trees be reclaimed; the death
#: callback removes the entry.  A raw dict of keyed refs (the pattern
#: WeakValueDictionary implements) keeps the hot construction path free
#: of extra Python frames.
_INTERN: Dict[Tuple[Label, Tuple["Tree", ...]], "_InternRef"] = {}

_UID = itertools.count(1)

_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def _forget(ref: "_InternRef") -> None:
    # A dead ref may already have been replaced by a re-interned tree;
    # only drop the entry if it is still ours.
    if _INTERN.get(ref.key) is ref:
        del _INTERN[ref.key]


class _InternRef(weakref.ref):
    """A weak reference remembering its intern-table key."""

    __slots__ = ("key",)

    def __new__(cls, tree: "Tree", key: Tuple[Label, Tuple["Tree", ...]]):
        self = weakref.ref.__new__(cls, tree, _forget)
        self.key = key
        return self

    def __init__(self, tree: "Tree", key: Tuple[Label, Tuple["Tree", ...]]):
        super().__init__(tree, _forget)


def intern_stats() -> Dict[str, int]:
    """Counters of the global intern table: ``hits``, ``misses``, ``live``.

    A *hit* is a :class:`Tree` construction that returned an existing
    object; a *miss* allocated a new node.  ``live`` is the current number
    of distinct trees (equals :func:`interned_count`).
    """
    return {**_STATS, "live": len(_INTERN)}


def reset_intern_stats() -> None:
    """Zero the hit/miss counters (the table itself is untouched)."""
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def interned_count() -> int:
    """Number of distinct live trees in the intern table."""
    return len(_INTERN)


class Tree:
    """An interned immutable ordered tree with a hashable label.

    Construction goes through the global intern table, so structurally
    equal trees **are** the same object::

        >>> Tree("f", (Tree("a"), Tree("a"))) is Tree("f", (Tree("a"), Tree("a")))
        True

    Equality and hashing are therefore O(1); size and height are computed
    once per distinct node.  Trees can be used freely as dictionary keys
    (the learning algorithm does this heavily for residuals and memoized
    evaluation) and as memo-cache keys via the never-reused :attr:`uid`.

    Never mutate a node or its label object — see the module docstring.
    """

    __slots__ = ("label", "children", "uid", "_hash", "_size", "_height", "__weakref__")

    label: Label
    children: Tuple["Tree", ...]
    #: Unique id of this structural value; monotonic, never reused.
    uid: int

    def __new__(cls, label: Label, children: Sequence["Tree"] = ()):
        children = tuple(children)
        for child in children:
            if not isinstance(child, Tree):
                raise TreeError(f"child {child!r} is not a Tree")
        key = (label, children)
        try:
            ref = _INTERN.get(key)
        except TypeError:
            raise TreeError(f"label {label!r} is not hashable") from None
        if ref is not None:
            cached = ref()
            if cached is not None:
                _STATS["hits"] += 1
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "uid", next(_UID))
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_size", 1 + sum(c._size for c in children))
        object.__setattr__(
            self,
            "_height",
            1 + max((c._height for c in children), default=0),
        )
        _STATS["misses"] += 1
        _INTERN[key] = _InternRef(self, key)
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise TreeError("Tree instances are immutable")

    def __reduce__(self):
        # Re-interns on unpickling; also makes copy/deepcopy structural.
        return (Tree, (self.label, self.children))

    def __copy__(self) -> "Tree":
        return self

    def __deepcopy__(self, memo: dict) -> "Tree":
        return self

    @property
    def arity(self) -> int:
        """Number of children (the rank this tree uses its root label at)."""
        return len(self.children)

    @property
    def size(self) -> int:
        """Number of nodes."""
        return self._size

    @property
    def height(self) -> int:
        """Number of nodes on a longest root-to-leaf branch (leaf = 1)."""
        return self._height

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __eq__(self, other: object) -> bool:
        # Interning makes identity the common case; the structural
        # fallback only matters for exotic label types where hash-equal
        # keys compare unequal in the weak table race-free path.
        if self is other:
            return True
        if not isinstance(other, Tree):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.label == other.label and self.children == other.children

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Tree({format_term(self)!r})"

    def __str__(self) -> str:
        return format_term(self)

    def child(self, index: int) -> "Tree":
        """1-based child access, matching the paper's node numbering."""
        if not 1 <= index <= len(self.children):
            raise TreeError(
                f"node labeled {self.label!r} has {len(self.children)} "
                f"children, no child #{index}"
            )
        return self.children[index - 1]

    def nodes(self) -> Iterator[Tuple[int, ...]]:
        """All node addresses in pre-order (Dewey, 1-based; root = ``()``)."""
        stack: List[Tuple[Tuple[int, ...], Tree]] = [((), self)]
        while stack:
            address, node = stack.pop()
            yield address
            for i in range(len(node.children), 0, -1):
                stack.append((address + (i,), node.children[i - 1]))

    def subtrees(self) -> Iterator[Tuple[Tuple[int, ...], "Tree"]]:
        """All ``(address, subtree)`` pairs in pre-order."""
        stack: List[Tuple[Tuple[int, ...], Tree]] = [((), self)]
        while stack:
            address, node = stack.pop()
            yield address, node
            for i in range(len(node.children), 0, -1):
                stack.append((address + (i,), node.children[i - 1]))

    def leaves(self) -> Iterator[Tuple[Tuple[int, ...], "Tree"]]:
        """All ``(address, leaf)`` pairs in left-to-right order."""
        for address, node in self.subtrees():
            if node.is_leaf:
                yield address, node

    def labels(self) -> Iterator[Label]:
        """All labels, in pre-order."""
        for _, node in self.subtrees():
            yield node.label

    def map_labels(self, fn: Callable[[Label], Label]) -> "Tree":
        """Return the tree with every label replaced by ``fn(label)``.

        Shared subtrees are relabeled once (memoized on :attr:`uid`).
        """
        memo: Dict[int, Tree] = {}

        def visit(node: Tree) -> Tree:
            cached = memo.get(node.uid)
            if cached is not None:
                return cached
            result = Tree(fn(node.label), tuple(visit(c) for c in node.children))
            memo[node.uid] = result
            return result

        return visit(self)


def tree(label: Label, *children: Tree) -> Tree:
    """Convenience constructor: ``tree("f", leaf("a"), leaf("b"))``."""
    return Tree(label, children)


def leaf(label: Label) -> Tree:
    """A one-node tree."""
    return Tree(label, ())


# ---------------------------------------------------------------------------
# Term syntax
# ---------------------------------------------------------------------------

_IDENT_EXTRA = set("#_-*+?|.!'⊣")


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in _IDENT_EXTRA


def format_term(node: Tree) -> str:
    """Render a tree in the paper's term syntax, ``f(a, g(b))``.

    Non-string labels are rendered with ``str``; labels containing
    delimiter characters are double-quoted so that parsing round-trips.
    """
    label = node.label if isinstance(node.label, str) else str(node.label)
    if not label or not all(_is_ident_char(ch) for ch in label):
        label = '"' + label.replace('"', '\\"') + '"'
    if not node.children:
        return label
    inner = ", ".join(format_term(child) for child in node.children)
    return f"{label}({inner})"


class _TermParser:
    """Recursive-descent parser for the term syntax."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(f"{message} at position {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def parse_label(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text):
            raise self.error("expected a label")
        if self.text[self.pos] == '"':
            self.pos += 1
            out: List[str] = []
            while self.pos < len(self.text) and self.text[self.pos] != '"':
                if self.text[self.pos] == "\\" and self.pos + 1 < len(self.text):
                    self.pos += 1
                out.append(self.text[self.pos])
                self.pos += 1
            if self.pos >= len(self.text):
                raise self.error("unterminated quoted label")
            self.pos += 1
            return "".join(out)
        start = self.pos
        while self.pos < len(self.text) and _is_ident_char(self.text[self.pos]):
            self.pos += 1
        if self.pos == start:
            raise self.error(f"unexpected character {self.text[self.pos]!r}")
        return self.text[start : self.pos]

    def parse_tree(self) -> Tree:
        label = self.parse_label()
        self.skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == "(":
            self.pos += 1
            self.skip_ws()
            children: List[Tree] = []
            if self.pos < len(self.text) and self.text[self.pos] == ")":
                self.pos += 1
                return Tree(label, ())
            while True:
                children.append(self.parse_tree())
                self.skip_ws()
                if self.pos >= len(self.text):
                    raise self.error("unterminated argument list")
                ch = self.text[self.pos]
                self.pos += 1
                if ch == ")":
                    return Tree(label, tuple(children))
                if ch != ",":
                    raise self.error(f"expected ',' or ')', got {ch!r}")
        return Tree(label, ())


def parse_term(text: str) -> Tree:
    """Parse the paper's term syntax: ``parse_term("f(a, g(b))")``.

    >>> parse_term("root(a(#,#), b)").size
    5
    """
    parser = _TermParser(text)
    result = parser.parse_tree()
    parser.skip_ws()
    if parser.pos != len(text):
        raise parser.error("trailing input after term")
    return result
