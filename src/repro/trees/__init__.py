"""Ranked trees, paths, prefixes, and DAG compression.

This package is the foundational substrate of the reproduction: ordered
ranked trees exactly as in Section 2 of the paper, the labeled-path
machinery (``F``-paths and npaths), the largest-common-prefix operator
``⊔`` with the special symbol ``⊥``, and the minimal-DAG representation the
paper recommends for exponential outputs.

Trees are globally **hash-consed** (see :mod:`repro.trees.tree`):
structurally equal trees are the same object, equality is O(1), every
node has a stable never-reused ``uid``, and the binary ``⊔`` is memoized
on uid pairs.  The one obligation this places on callers: never mutate a
node or a label object stored in one.
"""

from repro.trees.alphabet import RankedAlphabet
from repro.trees.tree import (
    Tree,
    tree,
    leaf,
    parse_term,
    format_term,
    intern_stats,
    interned_count,
    reset_intern_stats,
)
from repro.trees.paths import (
    Step,
    path_to_nodes,
    node_to_path,
    belongs,
    npath_belongs,
    subtree_at_path,
    subtree_at_node,
    paths_of,
    npaths_of,
    path_order_key,
    pair_order_key,
    parent_npath,
)
from repro.trees.lcp import (
    BOTTOM,
    is_bottom,
    lcp,
    lcp_many,
    bottom_positions,
    is_prefix_of,
    lcp_cache_stats,
    clear_lcp_cache,
)
from repro.trees.substitution import (
    substitute_leaves,
    replace_at_node,
    replace_at_path,
)
from repro.trees.dag import Dag, DagNode, dag_of_tree, dag_size, tree_size
from repro.trees.generate import all_trees_up_to, random_tree

__all__ = [
    "RankedAlphabet",
    "Tree",
    "tree",
    "leaf",
    "parse_term",
    "format_term",
    "intern_stats",
    "interned_count",
    "reset_intern_stats",
    "Step",
    "path_to_nodes",
    "node_to_path",
    "belongs",
    "npath_belongs",
    "subtree_at_path",
    "subtree_at_node",
    "paths_of",
    "npaths_of",
    "path_order_key",
    "pair_order_key",
    "parent_npath",
    "BOTTOM",
    "is_bottom",
    "lcp",
    "lcp_many",
    "bottom_positions",
    "is_prefix_of",
    "lcp_cache_stats",
    "clear_lcp_cache",
    "substitute_leaves",
    "replace_at_node",
    "replace_at_path",
    "Dag",
    "DagNode",
    "dag_of_tree",
    "dag_size",
    "tree_size",
    "all_trees_up_to",
    "random_tree",
]
