"""Minimal DAG (hash-consed) representation of trees.

The paper remarks (Section 1) that a DTOP can translate a monadic tree of
height ``n`` into a full binary tree of height ``n`` — exponentially large
as a tree but linear as a minimal DAG — and that the DAG representation of
a DTOP's output can be computed in time linear in the input (citing
Maneth & Busatto).  :class:`Dag` is the hash-consing pool that makes this
possible: structurally equal subtrees are shared, so repeated subtrees cost
one node.  :meth:`repro.transducers.dtop.DTOP.apply_dag` evaluates a
transducer directly into a :class:`Dag` without ever materializing the
output tree.

Relation to :class:`~repro.trees.tree.Tree` interning: ``Tree`` itself is
now globally hash-consed, so every in-memory tree *is already* its own
minimal DAG — ``dag_to_tree`` costs only the pointers.  :class:`Dag`
remains the explicit, pool-scoped representation: its dense integer uids
(``0 … len(pool)-1``) index per-pool arrays, its nodes never hold the
whole program's intern table alive, and :meth:`Dag.make` accepts labels at
any arity without the output-alphabet checks a transducer run needs.  The
two representations convert losslessly (:meth:`Dag.add_tree`,
:func:`dag_to_tree`); :meth:`Dag.add_tree` is memoized on the stable
``Tree.uid``, so re-adding shared subtrees is O(1) per node.

Like tree interning, a :class:`Dag` assumes its nodes are never mutated.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.trees.tree import Label, Tree


class DagNode:
    """A node of a hash-consed DAG.  Created only through :class:`Dag`."""

    __slots__ = ("label", "children", "uid")

    def __init__(self, label: Label, children: Tuple["DagNode", ...], uid: int):
        self.label = label
        self.children = children
        self.uid = uid

    def __repr__(self) -> str:
        return f"DagNode(#{self.uid}, {self.label!r}, {len(self.children)} children)"


class Dag:
    """A hash-consing pool: structurally equal subtrees share one node.

    >>> pool = Dag()
    >>> a = pool.make("a")
    >>> f1 = pool.make("f", (a, a))
    >>> f2 = pool.make("f", (a, a))
    >>> f1 is f2
    True
    """

    def __init__(self) -> None:
        self._pool: Dict[Tuple[Label, Tuple[int, ...]], DagNode] = {}
        self._nodes: List[DagNode] = []
        # Tree.uid → DagNode, so repeated add_tree calls on overlapping
        # trees (and shared subtrees within one tree) intern each distinct
        # subtree exactly once.  Tree uids are never reused, so entries
        # can never alias a different tree.
        self._tree_memo: Dict[int, DagNode] = {}

    def make(self, label: Label, children: Sequence[DagNode] = ()) -> DagNode:
        """Intern and return the node ``label(children…)``."""
        children = tuple(children)
        key = (label, tuple(c.uid for c in children))
        node = self._pool.get(key)
        if node is None:
            node = DagNode(label, children, len(self._nodes))
            self._pool[key] = node
            self._nodes.append(node)
        return node

    def add_tree(self, root: Tree) -> DagNode:
        """Intern a whole tree bottom-up; returns its DAG root.

        Memoized on :attr:`Tree.uid` across calls: only subtrees this pool
        has never seen are traversed.
        """
        memo = self._tree_memo
        cached = memo.get(root.uid)
        if cached is not None:
            return cached
        # Iterative post-order to avoid recursion limits on deep trees.
        stack: List[Tuple[Tree, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.uid in memo:
                continue
            if expanded:
                children = tuple(memo[c.uid] for c in node.children)
                memo[node.uid] = self.make(node.label, children)
            else:
                stack.append((node, True))
                for child in node.children:
                    if child.uid not in memo:
                        stack.append((child, False))
        return memo[root.uid]

    def add_forest(self, roots: Iterable[Tree]) -> List[DagNode]:
        """Intern several trees into one shared pool (order preserved)."""
        return [self.add_tree(root) for root in roots]

    def __len__(self) -> int:
        """Total number of distinct nodes interned in the pool."""
        return len(self._nodes)

    def nodes(self) -> Iterator[DagNode]:
        return iter(self._nodes)


def dag_of_tree(root: Tree) -> Tuple[Dag, DagNode]:
    """Build the minimal DAG of a single tree."""
    pool = Dag()
    return pool, pool.add_tree(root)


def dag_size(node: DagNode) -> int:
    """Number of distinct DAG nodes reachable from ``node``."""
    seen: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.uid in seen:
            continue
        seen.add(current.uid)
        stack.extend(current.children)
    return len(seen)


def tree_size(node: DagNode) -> int:
    """Size of the tree the DAG unfolds to (may be exponential in DAG size)."""
    memo: Dict[int, int] = {}

    def visit(current: DagNode) -> int:
        cached = memo.get(current.uid)
        if cached is not None:
            return cached
        total = 1 + sum(visit(child) for child in current.children)
        memo[current.uid] = total
        return total

    return visit(node)


def dag_to_tree(node: DagNode) -> Tree:
    """Unfold a DAG node back into a tree.  Exponential if sharing is deep."""
    memo: Dict[int, Tree] = {}

    def visit(current: DagNode) -> Tree:
        cached = memo.get(current.uid)
        if cached is not None:
            return cached
        result = Tree(current.label, tuple(visit(c) for c in current.children))
        memo[current.uid] = result
        return result

    return visit(node)
