"""Tree generation: exhaustive enumeration and random sampling.

Used by tests (hypothesis strategies wrap these), by benchmarks (workload
inputs), and by the characteristic-sample machinery when it needs small
members of a tree language.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence

from repro.errors import AlphabetError
from repro.trees.alphabet import RankedAlphabet
from repro.trees.tree import Tree


def all_trees_up_to(alphabet: RankedAlphabet, max_height: int) -> Iterator[Tree]:
    """Enumerate every tree over ``alphabet`` of height ≤ ``max_height``.

    Heights count nodes on the longest branch (a constant has height 1).
    Enumeration is by increasing height, deterministic order within a
    height level.  Beware: the count grows doubly exponentially.
    """
    by_height: List[List[Tree]] = [[]]  # by_height[h] = trees of height <= h
    for height in range(1, max_height + 1):
        previous = by_height[height - 1]
        level: List[Tree] = []
        for symbol, rank in sorted(alphabet.items()):
            if rank == 0:
                if height == 1:
                    level.append(Tree(symbol, ()))
                continue
            if height == 1:
                continue
            for combo in itertools.product(previous, repeat=rank):
                candidate = Tree(symbol, combo)
                if candidate.height == height:
                    level.append(candidate)
        for item in level:
            yield item
        by_height.append(previous + level)


def random_tree(
    alphabet: RankedAlphabet,
    max_height: int,
    rng: Optional[random.Random] = None,
    grow_probability: float = 0.8,
) -> Tree:
    """Sample a random tree over ``alphabet`` of height ≤ ``max_height``.

    Internal symbols are chosen while the height budget allows and a coin
    with ``grow_probability`` comes up heads; otherwise a constant is
    chosen.  The alphabet must contain at least one constant.
    """
    rng = rng or random.Random()
    constants = alphabet.constants
    if not constants:
        raise AlphabetError("cannot generate finite trees without constants")
    internals = [s for s, r in alphabet.items() if r > 0]

    def build(budget: int) -> Tree:
        grow = budget > 1 and internals and rng.random() < grow_probability
        if grow:
            symbol = rng.choice(internals)
            rank = alphabet.rank(symbol)
            return Tree(symbol, tuple(build(budget - 1) for _ in range(rank)))
        return Tree(rng.choice(constants), ())

    return build(max_height)


def monadic_tree(symbols: Sequence[str], end: str = "e") -> Tree:
    """Build the monadic tree ``s1(s2(…(end)…))`` from a word of symbols."""
    node = Tree(end, ())
    for symbol in reversed(symbols):
        node = Tree(symbol, (node,))
    return node


def full_binary_tree(symbol: str, leaf_symbol: str, height: int) -> Tree:
    """The full binary tree of the given height (height 1 = a single leaf)."""
    node = Tree(leaf_symbol, ())
    for _ in range(height - 1):
        node = Tree(symbol, (node, node))
    return node
