"""Substitutions on trees.

Section 2 uses the leaf substitution ``[f1 ← s1, …, fn ← sn]`` replacing
every leaf labeled ``fi`` by the tree ``si``; we also need surgical
replacement of the subtree at a given node or labeled path (used when
characteristic-sample generation grafts witness trees into a base tree).
"""

from __future__ import annotations

from typing import Callable, Mapping, Tuple

from repro.errors import PathError
from repro.trees.paths import Path, path_to_nodes
from repro.trees.tree import Label, Tree


def substitute_leaves(node: Tree, mapping: Mapping[Label, Tree]) -> Tree:
    """The paper's ``[f1 ← s1, …]``: replace every leaf whose label is a key.

    Inner nodes are never replaced even if their label is in the mapping —
    the substitution of Section 2 is defined on rank-0 symbols only.
    """
    if node.is_leaf:
        return mapping.get(node.label, node)
    changed = False
    children = []
    for child in node.children:
        new_child = substitute_leaves(child, mapping)
        changed = changed or new_child is not child
        children.append(new_child)
    if not changed:
        return node
    return Tree(node.label, tuple(children))


def substitute_leaves_fn(node: Tree, fn: Callable[[Tree], Tree]) -> Tree:
    """Replace every leaf ``l`` by ``fn(l)`` (identity to keep it)."""
    if node.is_leaf:
        return fn(node)
    children = tuple(substitute_leaves_fn(child, fn) for child in node.children)
    return Tree(node.label, children)


def replace_at_node(root: Tree, node: Tuple[int, ...], replacement: Tree) -> Tree:
    """Return ``root`` with the subtree at Dewey address ``node`` replaced."""
    if not node:
        return replacement
    index = node[0]
    if not 1 <= index <= root.arity:
        raise PathError(f"no child #{index} under a node labeled {root.label!r}")
    children = list(root.children)
    children[index - 1] = replace_at_node(children[index - 1], node[1:], replacement)
    return Tree(root.label, tuple(children))


def replace_at_path(root: Tree, path: Path, replacement: Tree) -> Tree:
    """Replace the subtree ``u⁻¹(root)`` addressed by a labeled path.

    Verifies that the path belongs to the tree before replacing.
    """
    current = root
    for label, index in path:
        if current.label != label or not 1 <= index <= current.arity:
            raise PathError(f"path does not belong to tree {root}")
        current = current.children[index - 1]
    return replace_at_node(root, path_to_nodes(path), replacement)
