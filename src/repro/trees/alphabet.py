"""Ranked alphabets (Section 2 of the paper).

A ranked alphabet is a finite set of symbols together with a total rank
function.  We keep the class deliberately small: it is a validated,
immutable mapping from symbol to rank with a few convenience queries used
throughout the library (symbols of a given rank, maximal rank, merging).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import AlphabetError

Symbol = str


class RankedAlphabet:
    """An immutable finite mapping from symbols to non-negative ranks.

    >>> f = RankedAlphabet({"f": 2, "a": 0, "b": 0})
    >>> f.rank("f")
    2
    >>> sorted(f.symbols_of_rank(0))
    ['a', 'b']
    """

    __slots__ = ("_ranks",)

    def __init__(self, ranks: Mapping[Symbol, int]):
        checked: Dict[Symbol, int] = {}
        for symbol, rank in ranks.items():
            if not isinstance(rank, int) or rank < 0:
                raise AlphabetError(
                    f"rank of {symbol!r} must be a non-negative integer, got {rank!r}"
                )
            checked[symbol] = rank
        self._ranks: Dict[Symbol, int] = checked

    @classmethod
    def from_trees(cls, trees: Iterable["object"]) -> "RankedAlphabet":
        """Collect the alphabet used by the given trees.

        Raises :class:`AlphabetError` if a symbol occurs with two different
        arities (the trees would then not be ranked).
        """
        ranks: Dict[Symbol, int] = {}
        stack = list(trees)
        while stack:
            node = stack.pop()
            label = node.label  # type: ignore[attr-defined]
            arity = len(node.children)  # type: ignore[attr-defined]
            if label in ranks and ranks[label] != arity:
                raise AlphabetError(
                    f"symbol {label!r} used with ranks {ranks[label]} and {arity}"
                )
            ranks[label] = arity
            stack.extend(node.children)  # type: ignore[attr-defined]
        return cls(ranks)

    def rank(self, symbol: Symbol) -> int:
        """Return the rank of ``symbol``; raise if unknown."""
        try:
            return self._ranks[symbol]
        except KeyError:
            raise AlphabetError(f"unknown symbol {symbol!r}") from None

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._ranks

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def items(self) -> Iterable[Tuple[Symbol, int]]:
        return self._ranks.items()

    def symbols_of_rank(self, rank: int) -> Tuple[Symbol, ...]:
        """All symbols of the given rank (the paper's ``F^(k)``)."""
        return tuple(s for s, r in self._ranks.items() if r == rank)

    @property
    def max_rank(self) -> int:
        """The largest rank of any symbol (0 for the empty alphabet)."""
        return max(self._ranks.values(), default=0)

    @property
    def constants(self) -> Tuple[Symbol, ...]:
        """The rank-0 symbols (``F^(0)``)."""
        return self.symbols_of_rank(0)

    def merge(self, other: "RankedAlphabet") -> "RankedAlphabet":
        """Union of two alphabets; ranks must agree on shared symbols."""
        merged = dict(self._ranks)
        for symbol, rank in other.items():
            if symbol in merged and merged[symbol] != rank:
                raise AlphabetError(
                    f"symbol {symbol!r} has rank {merged[symbol]} here "
                    f"but rank {rank} in the other alphabet"
                )
            merged[symbol] = rank
        return RankedAlphabet(merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankedAlphabet):
            return NotImplemented
        return self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(frozenset(self._ranks.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{s}/{r}" for s, r in sorted(self._ranks.items()))
        return f"RankedAlphabet({{{inner}}})"
