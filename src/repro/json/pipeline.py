"""End-to-end JSON-to-JSON transformations over the ranked encoding.

Mirrors :mod:`repro.xml.pipeline`: a :class:`JsonTransformation` wraps a
DTOP over the JSON encoding alphabet and encodes → transduces → decodes,
rehydrating scalar values through origin tracking.  Because the encoding
is schema-less, one :class:`~repro.json.encode.JsonEncoder` serves both
sides.

``learn_json_transformation`` runs ``RPNI_dtop`` on encoded example
pairs with the local-DTTA domain heuristic (the encoding language is
local in exactly the sense of
:func:`repro.automata.build.local_dtta_from_trees`).

Artifacts: :data:`JSON_BUNDLE_FORMAT` (``repro/json-transformation@1``)
bundles the transducer and the domain automaton; the server registry
serves them next to the XML bundles with the same hot-reload,
``.engine`` sidecar, and micro-batching machinery.
"""

from __future__ import annotations

import json as _json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.automata.build import local_dtta_from_trees
from repro.automata.dtta import DTTA
from repro.engine import engine_for
from repro.errors import ReproError
from repro.learning.rpni import LearnedDTOP, rpni_dtop
from repro.learning.sample import Sample
from repro.obs.trace import NULL_TRACE
from repro.serialize import (
    dtop_from_data,
    dtop_to_data,
    dtta_from_data,
    dtta_to_data,
)
from repro.transducers.dtop import DTOP
from repro.transducers.origins import apply_with_origins
from repro.xml.encode import VALUE_LABELS

from repro.json.encode import JsonEncoder, Values
from repro.json.jsonio import JsonValue

#: Registry artifact format for served JSON transformations.
JSON_BUNDLE_FORMAT = "repro/json-transformation@1"


@dataclass
class JsonTransformation:
    """A JSON-to-JSON transformation (hand-written or learned).

    ``apply`` works on plain JSON values; scalars are carried through by
    provenance — each output value leaf takes the scalar of the input
    position the emitting rule was reading.
    """

    transducer: DTOP
    encoder: JsonEncoder
    domain: DTTA
    learned: Optional[LearnedDTOP] = None

    def apply_encoded(self, encoded):
        """Run the transducer on an already-encoded ranked tree."""
        return self.transducer.apply(encoded)

    def apply(self, document: JsonValue) -> JsonValue:
        """Transform one JSON value of the modeled subset."""
        encoded, values = self.encoder.encode_with_values(document)
        output, origins = apply_with_origins(self.transducer, encoded)
        return self._decode_with_values(output, origins, values)

    def _decode_with_values(
        self,
        output,
        origins: Dict[Tuple[int, ...], Tuple[int, ...]],
        values: Values,
    ) -> JsonValue:
        out_values: Values = {}
        for address, node in output.subtrees():
            if node.label in VALUE_LABELS and address in origins:
                value = values.get(origins[address])
                if value is not None:
                    out_values[address] = value
        return self.encoder.decode(output, out_values)

    def apply_batch(
        self,
        documents: Iterable[JsonValue],
        jobs: Optional[int] = None,
        service: Optional["TransformService"] = None,
        backend: Optional[str] = None,
        trace=None,
    ) -> List[Union[JsonValue, ReproError]]:
        """Transform a batch of documents; per-document outcomes.

        Exactly the XML contract
        (:meth:`repro.xml.pipeline.XMLTransformation.apply_batch`):
        value-free documents (booleans, nulls, empty containers) go
        through the compiled batch engine in one sweep; documents
        carrying scalars need the origin-tracking interpreter to
        rehydrate and run individually.  Failures are per-document.
        A ``trace`` collects the pipeline's encode/execute/decode spans.
        """
        if trace is None:
            trace = NULL_TRACE
        prepared: List[Union[Tuple, ReproError]] = []
        engine_inputs = []
        with trace.span("pipeline.encode", codec="json"):
            for document in documents:
                try:
                    encoded, values = self.encoder.encode_with_values(document)
                except ReproError as error:
                    prepared.append(error)
                    continue
                except RecursionError:
                    prepared.append(
                        ReproError(
                            "document encoding exceeded the recursion limit "
                            "(the JSON encoder is recursive over nesting)"
                        )
                    )
                    continue
                prepared.append((encoded, values))
                if not values:
                    engine_inputs.append(encoded)
        if service is not None:
            raw_outcomes = service.run_batch_outcomes(engine_inputs, trace=trace)
        elif jobs is not None and jobs > 1:
            from repro.serve import TransformService

            with TransformService(
                self.transducer, jobs=jobs, backend=backend
            ) as pool:
                raw_outcomes = pool.run_batch_outcomes(
                    engine_inputs, trace=trace
                )
        else:
            engine = engine_for(self.transducer, backend)
            with trace.span(
                "execute", backend=engine.backend, documents=len(engine_inputs)
            ):
                raw_outcomes = engine.run_batch_outcomes(engine_inputs)
        outcomes = iter(raw_outcomes)
        results: List[Union[JsonValue, ReproError]] = []
        with trace.span("pipeline.decode", codec="json"):
            for entry in prepared:
                if isinstance(entry, ReproError):
                    results.append(entry)
                    continue
                encoded, values = entry
                try:
                    if values:
                        output, origins = apply_with_origins(
                            self.transducer, encoded
                        )
                        results.append(
                            self._decode_with_values(output, origins, values)
                        )
                    else:
                        outcome = next(outcomes)
                        if isinstance(outcome, ReproError):
                            results.append(outcome)
                        else:
                            results.append(
                                self._decode_with_values(outcome, {}, {})
                            )
                except ReproError as error:
                    results.append(error)
                except RecursionError:
                    results.append(
                        ReproError(
                            "document translation exceeded the recursion limit "
                            "(origin tracking and JSON decoding are recursive)"
                        )
                    )
        return results

    def apply_stream(
        self,
        documents: Iterable[JsonValue],
        jobs: Optional[int] = None,
        chunk_docs: int = 64,
        backend: Optional[str] = None,
    ):
        """Transform a document stream incrementally; yields outcomes.

        Pair with :func:`repro.json.jsonio.iter_json_documents` and the
        corpus is never materialized.  Outcomes stream back in input
        order, identical to :meth:`apply_batch` on the full list.
        """
        service = None
        try:
            if jobs is not None and jobs > 1:
                from repro.serve import TransformService

                service = TransformService(
                    self.transducer, jobs=jobs, backend=backend
                )
            window: List[JsonValue] = []
            for document in documents:
                window.append(document)
                if len(window) >= chunk_docs:
                    for outcome in self.apply_batch(
                        window, service=service, backend=backend
                    ):
                        yield outcome
                    window = []
            if window:
                for outcome in self.apply_batch(
                    window, service=service, backend=backend
                ):
                    yield outcome
        finally:
            if service is not None:
                service.close()

    @property
    def num_states(self) -> int:
        return len(self.transducer.states)

    @property
    def num_rules(self) -> int:
        return len(self.transducer.rules)


def encoded_json_sample(
    examples: Iterable[Tuple[JsonValue, JsonValue]],
    encoder: JsonEncoder,
) -> Sample:
    """Encode JSON example pairs into a ranked-tree sample."""
    pairs = []
    for source, target in examples:
        pairs.append((encoder.encode(source), encoder.encode(target)))
    return Sample(pairs)


def learn_json_transformation(
    examples: Iterable[Tuple[JsonValue, JsonValue]],
    domain: Optional[DTTA] = None,
) -> JsonTransformation:
    """Learn a JSON transformation from example value pairs.

    The examples must form (a superset of) a characteristic sample of
    the target over the encoded trees.  Without an explicit ``domain``
    the local-DTTA heuristic infers one from the encoded inputs (the
    encoding language is local, so the heuristic is exact on
    key-complete examples).
    """
    encoder = JsonEncoder()
    sample = encoded_json_sample(examples, encoder)
    if domain is None:
        domain = local_dtta_from_trees([pair[0] for pair in sample.pairs])
    learned = rpni_dtop(sample, domain)
    return JsonTransformation(
        transducer=learned.dtop,
        encoder=encoder,
        domain=learned.domain,
        learned=learned,
    )


def json_transformation_to_bundle(
    transformation: JsonTransformation,
) -> dict:
    """The JSON bundle dict of a transformation (transducer + domain)."""
    return {
        "format": JSON_BUNDLE_FORMAT,
        "transducer": dtop_to_data(transformation.transducer),
        "domain": dtta_to_data(transformation.domain),
    }


def json_transformation_from_bundle(bundle: dict) -> JsonTransformation:
    """Rebuild a transformation from an already-parsed bundle dict.

    The encoder is schema-less and carries no state worth persisting —
    a fresh one registers keys as documents arrive.
    """
    return JsonTransformation(
        transducer=dtop_from_data(bundle["transducer"]),
        encoder=JsonEncoder(),
        domain=dtta_from_data(bundle["domain"]),
    )


def save_json_transformation(
    transformation: JsonTransformation, path: Union[str, Path]
) -> None:
    """Persist a transformation as a ``repro/json-transformation@1`` file."""
    bundle = json_transformation_to_bundle(transformation)
    Path(path).write_text(
        _json.dumps(bundle, indent=2, ensure_ascii=False)
    )


def load_json_transformation(path: Union[str, Path]) -> JsonTransformation:
    """Load a transformation saved by :func:`save_json_transformation`."""
    bundle = _json.loads(Path(path).read_text())
    if bundle.get("format") != JSON_BUNDLE_FORMAT:
        raise ReproError(f"{path} is not a {JSON_BUNDLE_FORMAT} bundle")
    return json_transformation_from_bundle(bundle)
