"""JSON transformations: the modeled subset, its ranked encoding, serving.

The paper's DTD-based encoding (§10) is format-agnostic — any document
shape that lowers to ranked trees over a finite alphabet is served by
the same learned DTOPs.  This package is the JSON sibling of
:mod:`repro.xml`:

* :mod:`repro.json.jsonio` — strict reader/writer for the modeled JSON
  subset, with offset-carrying parse errors and an incremental
  JSON-lines stream parser;
* :mod:`repro.json.encode` — the schema-less ranked encoding (cons-list
  containers, key-labeled members, abstracted scalar values with a
  side table for rehydration);
* :mod:`repro.json.pipeline` — :class:`JsonTransformation` (apply /
  apply_batch / apply_stream, engine + backend selection), the RPNI
  learner entry point, and the ``repro/json-transformation@1`` bundle
  served by the registry.
"""

from repro.json.jsonio import (
    JsonLinesParser,
    JsonValue,
    iter_json_documents,
    parse_json,
    serialize_json,
)
from repro.json.encode import JsonEncoder, json_alphabet, member_label
from repro.json.pipeline import (
    JSON_BUNDLE_FORMAT,
    JsonTransformation,
    json_transformation_from_bundle,
    json_transformation_to_bundle,
    learn_json_transformation,
    load_json_transformation,
    save_json_transformation,
)

__all__ = [
    "JsonLinesParser",
    "JsonValue",
    "iter_json_documents",
    "parse_json",
    "serialize_json",
    "JsonEncoder",
    "json_alphabet",
    "member_label",
    "JSON_BUNDLE_FORMAT",
    "JsonTransformation",
    "json_transformation_from_bundle",
    "json_transformation_to_bundle",
    "learn_json_transformation",
    "load_json_transformation",
    "save_json_transformation",
]
