"""A strict JSON reader/writer for the modeled document subset.

The modeled values are objects, arrays, strings, finite numbers, and the
three literals — exactly RFC 8259, minus the parts a ranked encoding
cannot represent faithfully:

* duplicate object keys are rejected (the encoding keys members by
  name, so a duplicate would silently drop a value);
* nesting deeper than ``max_depth`` is rejected with a clear error
  instead of a :class:`RecursionError` from deep inside the parser;
* non-finite numbers (``NaN``/``Infinity`` — not JSON anyway) never
  parse and never serialize.

Every syntax error is a :class:`~repro.errors.ParseError` carrying the
byte offset of the offending character, mirroring
:mod:`repro.xml.xmlio`.  The writer is deterministic: object members
keep their insertion order, numbers render via ``repr`` (round-trips
exactly), and the output is a single line — which is what makes the
JSON-lines protocol of :class:`JsonLinesParser` self-framing.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

from repro.errors import EncodingError, ParseError

#: Nesting cap: parse errors beat RecursionErrors from a hostile body.
DEFAULT_MAX_DEPTH = 200

_WHITESPACE = " \t\n\r"
_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}
_REVERSE_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

JsonValue = Union[dict, list, str, int, float, bool, None]


class _JsonParser:
    def __init__(self, source: str, max_depth: int):
        self.source = source
        self.pos = 0
        self.max_depth = max_depth

    def error(self, message: str) -> ParseError:
        return ParseError(f"JSON error at offset {self.pos}: {message}")

    def skip_whitespace(self) -> None:
        while (
            self.pos < len(self.source)
            and self.source[self.pos] in _WHITESPACE
        ):
            self.pos += 1

    def parse_value(self, depth: int) -> JsonValue:
        if depth > self.max_depth:
            raise self.error(
                f"nesting depth exceeds the modeled maximum of "
                f"{self.max_depth}"
            )
        self.skip_whitespace()
        if self.pos >= len(self.source):
            raise self.error("unexpected end of input, expected a value")
        ch = self.source[self.pos]
        if ch == "{":
            return self.parse_object(depth)
        if ch == "[":
            return self.parse_array(depth)
        if ch == '"':
            return self.parse_string()
        if ch == "-" or ch.isdigit():
            return self.parse_number()
        for literal, value in (("true", True), ("false", False), ("null", None)):
            if self.source.startswith(literal, self.pos):
                self.pos += len(literal)
                return value
        raise self.error(f"unexpected character {ch!r}")

    def parse_object(self, depth: int) -> dict:
        start = self.pos
        self.pos += 1  # consume '{'
        result: dict = {}
        self.skip_whitespace()
        if self.pos < len(self.source) and self.source[self.pos] == "}":
            self.pos += 1
            return result
        while True:
            self.skip_whitespace()
            if self.pos >= len(self.source):
                self.pos = start
                raise self.error("unterminated object")
            if self.source[self.pos] != '"':
                raise self.error("object keys must be strings")
            key_offset = self.pos
            key = self.parse_string()
            if key in result:
                self.pos = key_offset
                raise self.error(f"duplicate object key {key!r}")
            self.skip_whitespace()
            if self.pos >= len(self.source) or self.source[self.pos] != ":":
                raise self.error("expected ':' after an object key")
            self.pos += 1
            result[key] = self.parse_value(depth + 1)
            self.skip_whitespace()
            if self.pos >= len(self.source):
                self.pos = start
                raise self.error("unterminated object")
            if self.source[self.pos] == ",":
                self.pos += 1
                continue
            if self.source[self.pos] == "}":
                self.pos += 1
                return result
            raise self.error("expected ',' or '}' in an object")

    def parse_array(self, depth: int) -> list:
        start = self.pos
        self.pos += 1  # consume '['
        result: list = []
        self.skip_whitespace()
        if self.pos < len(self.source) and self.source[self.pos] == "]":
            self.pos += 1
            return result
        while True:
            result.append(self.parse_value(depth + 1))
            self.skip_whitespace()
            if self.pos >= len(self.source):
                self.pos = start
                raise self.error("unterminated array")
            if self.source[self.pos] == ",":
                self.pos += 1
                continue
            if self.source[self.pos] == "]":
                self.pos += 1
                return result
            raise self.error("expected ',' or ']' in an array")

    def parse_string(self) -> str:
        self.pos += 1  # consume '"'
        out: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self.error("unterminated string")
            ch = self.source[self.pos]
            if ch == '"':
                self.pos += 1
                return "".join(out)
            if ch == "\\":
                out.append(self.parse_escape())
                continue
            if ord(ch) < 0x20:
                raise self.error(
                    f"raw control character U+{ord(ch):04X} in a string"
                )
            out.append(ch)
            self.pos += 1

    def parse_escape(self) -> str:
        escape_offset = self.pos
        self.pos += 1  # consume '\'
        if self.pos >= len(self.source):
            raise self.error("unterminated escape sequence")
        ch = self.source[self.pos]
        if ch in _ESCAPES:
            self.pos += 1
            return _ESCAPES[ch]
        if ch != "u":
            self.pos = escape_offset
            raise self.error(f"unknown escape sequence \\{ch}")
        code = self._hex4(escape_offset)
        if 0xD800 <= code <= 0xDBFF:
            # High surrogate: a low surrogate escape must follow.
            if not self.source.startswith("\\u", self.pos):
                self.pos = escape_offset
                raise self.error(
                    f"unpaired high surrogate \\u{code:04X}"
                )
            low_offset = self.pos
            self.pos += 1
            low = self._hex4(low_offset)
            if not 0xDC00 <= low <= 0xDFFF:
                self.pos = escape_offset
                raise self.error(
                    f"high surrogate \\u{code:04X} followed by "
                    f"\\u{low:04X}, not a low surrogate"
                )
            return chr(0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00))
        if 0xDC00 <= code <= 0xDFFF:
            self.pos = escape_offset
            raise self.error(f"unpaired low surrogate \\u{code:04X}")
        return chr(code)

    def _hex4(self, escape_offset: int) -> int:
        self.pos += 1  # consume 'u'
        digits = self.source[self.pos : self.pos + 4]
        if len(digits) != 4 or any(
            d not in "0123456789abcdefABCDEF" for d in digits
        ):
            self.pos = escape_offset
            raise self.error(
                f"\\u escape needs four hex digits, found {digits!r}"
            )
        self.pos += 4
        return int(digits, 16)

    def parse_number(self) -> Union[int, float]:
        start = self.pos
        source = self.source
        if self.pos < len(source) and source[self.pos] == "-":
            self.pos += 1
        digits_start = self.pos
        while self.pos < len(source) and source[self.pos].isdigit():
            self.pos += 1
        if self.pos == digits_start:
            self.pos = start
            raise self.error("malformed number")
        if (
            source[digits_start] == "0"
            and self.pos > digits_start + 1
        ):
            self.pos = start
            raise self.error("numbers may not have leading zeros")
        is_float = False
        if self.pos < len(source) and source[self.pos] == ".":
            is_float = True
            self.pos += 1
            fraction_start = self.pos
            while self.pos < len(source) and source[self.pos].isdigit():
                self.pos += 1
            if self.pos == fraction_start:
                self.pos = start
                raise self.error("number fraction needs digits")
        if self.pos < len(source) and source[self.pos] in "eE":
            is_float = True
            self.pos += 1
            if self.pos < len(source) and source[self.pos] in "+-":
                self.pos += 1
            exponent_start = self.pos
            while self.pos < len(source) and source[self.pos].isdigit():
                self.pos += 1
            if self.pos == exponent_start:
                self.pos = start
                raise self.error("number exponent needs digits")
        text = source[start : self.pos]
        if not is_float:
            return int(text)
        value = float(text)
        if not math.isfinite(value):
            self.pos = start
            raise self.error(f"number {text!r} overflows to infinity")
        return value


def parse_json(
    source: Union[str, bytes], max_depth: int = DEFAULT_MAX_DEPTH
) -> JsonValue:
    """Parse one JSON document from the modeled subset.

    >>> parse_json('{"a": [1, true, null]}')
    {'a': [1, True, None]}
    """
    if isinstance(source, bytes):
        try:
            source = source.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ParseError(
                f"JSON error at offset {error.start}: invalid UTF-8"
            ) from None
    parser = _JsonParser(source, max_depth)
    value = parser.parse_value(0)
    parser.skip_whitespace()
    if parser.pos != len(source):
        raise parser.error("trailing content after the document")
    return value


def _serialize_string(value: str) -> str:
    out: List[str] = ['"']
    for ch in value:
        if ch in _REVERSE_ESCAPES:
            out.append(_REVERSE_ESCAPES[ch])
        elif ord(ch) < 0x20:
            out.append(f"\\u{ord(ch):04x}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def serialize_json(value: JsonValue) -> str:
    """Render a modeled value as a single-line JSON document.

    Deterministic (insertion order, ``repr`` floats) and iterative over
    container members, so the output is byte-stable across the local and
    served paths.
    """
    out: List[str] = []
    _render(value, out)
    return "".join(out)


def _render(value: JsonValue, out: List[str]) -> None:
    if value is True:
        out.append("true")
    elif value is False:
        out.append("false")
    elif value is None:
        out.append("null")
    elif isinstance(value, str):
        out.append(_serialize_string(value))
    elif isinstance(value, int):
        out.append(str(value))
    elif isinstance(value, float):
        if not math.isfinite(value):
            raise EncodingError(
                f"non-finite number {value!r} is outside the modeled "
                f"JSON subset"
            )
        out.append(repr(value))
    elif isinstance(value, dict):
        out.append("{")
        for index, (key, member) in enumerate(value.items()):
            if not isinstance(key, str):
                raise EncodingError(
                    f"object key {key!r} is not a string"
                )
            if index:
                out.append(", ")
            out.append(_serialize_string(key))
            out.append(": ")
            _render(member, out)
        out.append("}")
    elif isinstance(value, (list, tuple)):
        out.append("[")
        for index, item in enumerate(value):
            if index:
                out.append(", ")
            _render(item, out)
        out.append("]")
    else:
        raise EncodingError(
            f"value of type {type(value).__name__} is outside the "
            f"modeled JSON subset"
        )


class JsonLinesParser:
    """Incremental JSON-lines reader with the stream-parser contract.

    Mirrors :class:`repro.serve.stream.StreamParser`: feed byte (or
    str) fragments with :meth:`feed`, drain completed documents with
    :meth:`ready`, finish with :meth:`close`.  One document per
    newline-terminated line; blank lines are skipped; a final line
    without a trailing newline completes at :meth:`close`.
    """

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH):
        self.max_depth = max_depth
        self._buffer = b""
        self._ready: List[JsonValue] = []
        self._closed = False
        self._documents = 0
        self._offset = 0  # bytes consumed before the current buffer

    def _parse_line(self, line: bytes) -> None:
        if not line.strip():
            return
        try:
            self._ready.append(parse_json(line, max_depth=self.max_depth))
        except ParseError as error:
            raise ParseError(
                f"JSON stream error in document "
                f"{self._documents + len(self._ready) + 1} "
                f"(near byte {self._offset}): {error}"
            ) from None
        except RecursionError:
            raise ParseError(
                f"JSON stream error in document "
                f"{self._documents + len(self._ready) + 1}: nesting "
                f"exceeded the recursion limit"
            ) from None

    def feed(self, fragment: Union[str, bytes]) -> None:
        """Consume the next fragment of the stream."""
        if self._closed:
            raise ParseError("cannot feed a closed stream parser")
        if isinstance(fragment, str):
            fragment = fragment.encode("utf-8")
        self._buffer += fragment
        while True:
            newline = self._buffer.find(b"\n")
            if newline == -1:
                return
            line = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1 :]
            self._offset += newline + 1
            self._parse_line(line)

    def ready(self) -> List[JsonValue]:
        """Documents completed since the last call (drains the buffer)."""
        done = self._ready
        self._ready = []
        self._documents += len(done)
        return done

    def close(self) -> List[JsonValue]:
        """Signal end of stream; return the final completed documents."""
        if not self._closed:
            self._closed = True
            tail, self._buffer = self._buffer, b""
            self._parse_line(tail)
        return self.ready()

    @property
    def documents_seen(self) -> int:
        """Number of documents completed so far."""
        return self._documents


def iter_json_documents(source, chunk_bytes: Optional[int] = None):
    """Yield the documents of a JSON-lines stream, incrementally.

    Accepts the same sources as the XML stream readers (str, bytes,
    path, file object, iterable of fragments); memory is bounded by the
    largest single line.
    """
    from repro.serve.stream import DEFAULT_CHUNK_BYTES, _iter_chunks

    parser = JsonLinesParser()
    for chunk in _iter_chunks(source, chunk_bytes or DEFAULT_CHUNK_BYTES):
        parser.feed(chunk)
        for document in parser.ready():
            yield document
    for document in parser.close():
        yield document
