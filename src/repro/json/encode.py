"""The ranked encoding of JSON documents, mirroring ``enc_D`` (§10).

The paper's DTD-based encoding is format-agnostic: any document shape
that lowers to ranked trees over a finite alphabet can be served by the
same learned DTOPs.  JSON lowers with a fixed, schema-less alphabet:

* ``obj(members)`` / ``arr(items)`` for the two containers;
* cons-lists for their contents — ``mems(member, rest)`` /
  ``items(item, rest)`` with the shared terminator ``#`` (the compact,
  path-closed list rule of :class:`~repro.xml.encode.DTDEncoder`);
* ``m:KEY(value)`` for one object member — the key lives in the label,
  so a DTOP rule can dispatch on it (rename, rewrap, …); keys are
  restricted to an identifier-like subset so every key is a valid
  tree label;
* ``str(v)`` / ``num(v)`` for scalars, with ``v`` one of the two
  abstract value constants of :func:`repro.xml.encode.abstract_value_of`
  — the raw scalar goes into a side table keyed by the Dewey address of
  the abstract leaf, exactly the XML contract, so transformation
  results re-hydrate through origin tracking;
* ``true`` / ``false`` / ``null`` as rank-0 constants.

List spines are built and consumed iteratively, so recursion depth is
bounded by document *nesting*, never by array length.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import EncodingError
from repro.trees.alphabet import RankedAlphabet
from repro.trees.tree import Tree
from repro.xml.dtd import HASH_LABEL
from repro.xml.encode import VALUE_LABELS, abstract_value_of

from repro.json.jsonio import JsonValue, serialize_json

OBJECT_LABEL = "obj"
ARRAY_LABEL = "arr"
MEMBERS_LABEL = "mems"
ITEMS_LABEL = "items"
STRING_LABEL = "str"
NUMBER_LABEL = "num"
TRUE_LABEL = "true"
FALSE_LABEL = "false"
NULL_LABEL = "null"

#: Object keys are carried in node labels; prefixed to avoid collisions
#: with the structural symbols above.
MEMBER_PREFIX = "m:"

#: The modeled key subset — every key must be a valid tree label and
#: must survive the term syntax used in error messages and samples.
KEY_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_.-]*\Z")

#: Ranks of the fixed (key-independent) encoding symbols.
BASE_RANKS = {
    HASH_LABEL: 0,
    OBJECT_LABEL: 1,
    ARRAY_LABEL: 1,
    MEMBERS_LABEL: 2,
    ITEMS_LABEL: 2,
    STRING_LABEL: 1,
    NUMBER_LABEL: 1,
    TRUE_LABEL: 0,
    FALSE_LABEL: 0,
    NULL_LABEL: 0,
    VALUE_LABELS[0]: 0,
    VALUE_LABELS[1]: 0,
}

HASH = Tree(HASH_LABEL, ())

Values = Dict[Tuple[int, ...], JsonValue]

Scalar = (str, int, float)


def member_label(key: str) -> str:
    """The encoding label of an object member with ``key``."""
    if not KEY_PATTERN.match(key):
        raise EncodingError(
            f"object key {key!r} is outside the modeled subset "
            f"(keys must match {KEY_PATTERN.pattern})"
        )
    return MEMBER_PREFIX + key


def json_alphabet(keys: Tuple[str, ...] = ()) -> RankedAlphabet:
    """The encoding alphabet over a finite key set."""
    ranks = dict(BASE_RANKS)
    for key in keys:
        ranks[member_label(key)] = 1
    return RankedAlphabet(ranks)


def _scalar_text(value: JsonValue) -> str:
    """The canonical text a scalar is abstracted through."""
    if isinstance(value, str):
        return value
    return serialize_json(value)


class JsonEncoder:
    """Encoder/decoder between JSON values and ranked trees.

    Schema-less: any document of the modeled subset encodes; the keys
    seen so far accumulate into :attr:`alphabet` (the way a
    :class:`~repro.xml.encode.DTDEncoder` derives its alphabet from the
    DTD).  Scalar *values* are always abstracted — the encoding is the
    ``abstract_values`` mode of the XML encoder, which is what makes
    copying of values observable and provenance exact.
    """

    def __init__(self) -> None:
        self._keys: Set[str] = set()

    @property
    def keys(self) -> Tuple[str, ...]:
        """Keys registered so far (by encoding or :meth:`register_keys`)."""
        return tuple(sorted(self._keys))

    @property
    def alphabet(self) -> RankedAlphabet:
        """The encoding alphabet over every key seen so far."""
        return json_alphabet(self.keys)

    def register_keys(self, keys) -> None:
        for key in keys:
            member_label(key)  # validates
            self._keys.add(key)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, document: JsonValue) -> Tree:
        """Encode a document; scalar values are dropped (the paper's model)."""
        tree, _values = self.encode_with_values(document)
        return tree

    def encode_with_values(self, document: JsonValue) -> Tuple[Tree, Values]:
        """Encode a document, returning the ranked tree and its scalars.

        The value table maps Dewey addresses of the abstract ``v0``/``v1``
        leaves to the original scalar (string or number).  Addresses are
        assigned post-hoc: preorder over the encoded tree visits the
        value leaves in document order, the same order the scalars were
        collected in.
        """
        scalars: List[JsonValue] = []
        tree = self._encode_value(document, scalars)
        values: Values = {}
        if scalars:
            # subtrees() is pre-order, which visits the value leaves in
            # document order — the order the scalars were collected in.
            slots = (
                address
                for address, node in tree.subtrees()
                if node.label in VALUE_LABELS
            )
            for address, value in zip(slots, scalars):
                values[address] = value
        return tree, values

    def _encode_value(self, value: JsonValue, scalars: List[JsonValue]) -> Tree:
        # bool before int: True/False are int instances in Python.
        if value is True:
            return Tree(TRUE_LABEL, ())
        if value is False:
            return Tree(FALSE_LABEL, ())
        if value is None:
            return Tree(NULL_LABEL, ())
        if isinstance(value, str):
            scalars.append(value)
            return Tree(
                STRING_LABEL, (Tree(abstract_value_of(value), ()),)
            )
        if isinstance(value, (int, float)):
            text = _scalar_text(value)  # also rejects NaN/Infinity
            scalars.append(value)
            return Tree(
                NUMBER_LABEL, (Tree(abstract_value_of(text), ()),)
            )
        if isinstance(value, dict):
            heads = []
            for key, member in value.items():
                if not isinstance(key, str):
                    raise EncodingError(
                        f"object key {key!r} is not a string"
                    )
                label = member_label(key)
                self._keys.add(key)
                heads.append(
                    Tree(label, (self._encode_value(member, scalars),))
                )
            return Tree(
                OBJECT_LABEL, (self._cons(MEMBERS_LABEL, heads),)
            )
        if isinstance(value, (list, tuple)):
            heads = [self._encode_value(item, scalars) for item in value]
            return Tree(ARRAY_LABEL, (self._cons(ITEMS_LABEL, heads),))
        raise EncodingError(
            f"value of type {type(value).__name__} is outside the "
            f"modeled JSON subset"
        )

    @staticmethod
    def _cons(label: str, heads: List[Tree]) -> Tree:
        spine = HASH
        for head in reversed(heads):
            spine = Tree(label, (head, spine))
        return spine

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, tree: Tree, values: Optional[Values] = None) -> JsonValue:
        """Decode a ranked encoding back to a JSON value.

        ``values`` rehydrates scalars by Dewey address of the abstract
        leaves.  A value leaf with no entry (a scalar the machine
        synthesized rather than copied) defaults to ``""`` under
        ``str`` and ``0`` under ``num``; a value that crossed types (a
        string moved into a ``num`` position, say) is coerced.
        """
        return self._decode_value(tree, (), values or {})

    def _decode_value(
        self, node: Tree, address: Tuple[int, ...], values: Values
    ) -> JsonValue:
        label = node.label
        if label == TRUE_LABEL:
            return True
        if label == FALSE_LABEL:
            return False
        if label == NULL_LABEL:
            return None
        if label == STRING_LABEL:
            raw = values.get(self._value_address(node, address))
            if raw is None:
                return ""
            return raw if isinstance(raw, str) else serialize_json(raw)
        if label == NUMBER_LABEL:
            raw = values.get(self._value_address(node, address))
            if isinstance(raw, bool) or raw is None:
                return 0
            if isinstance(raw, (int, float)):
                return raw
            if isinstance(raw, str):
                try:
                    return int(raw)
                except ValueError:
                    try:
                        return float(raw)
                    except ValueError:
                        return 0
            return 0
        if label == OBJECT_LABEL:
            self._expect_rank(node, 1)
            result: dict = {}
            for head, head_address in self._iter_spine(
                MEMBERS_LABEL, node.children[0], address + (1,)
            ):
                key = self._member_key(head)
                if key in result:
                    raise EncodingError(
                        f"decoded object has duplicate key {key!r}"
                    )
                result[key] = self._decode_value(
                    head.children[0], head_address + (1,), values
                )
            return result
        if label == ARRAY_LABEL:
            self._expect_rank(node, 1)
            return [
                self._decode_value(head, head_address, values)
                for head, head_address in self._iter_spine(
                    ITEMS_LABEL, node.children[0], address + (1,)
                )
            ]
        raise EncodingError(
            f"unknown JSON encoding symbol {label!r}"
        )

    @staticmethod
    def _expect_rank(node: Tree, rank: int) -> None:
        if len(node.children) != rank:
            raise EncodingError(
                f"encoding symbol {node.label!r} used with rank "
                f"{len(node.children)}, expected {rank}"
            )

    @staticmethod
    def _value_address(node: Tree, address: Tuple[int, ...]) -> Tuple[int, ...]:
        if (
            len(node.children) != 1
            or node.children[0].label not in VALUE_LABELS
            or node.children[0].children
        ):
            raise EncodingError(
                f"scalar symbol {node.label!r} must hold one abstract "
                f"value leaf"
            )
        return address + (1,)

    @staticmethod
    def _member_key(head: Tree) -> str:
        if not head.label.startswith(MEMBER_PREFIX) or len(head.children) != 1:
            raise EncodingError(
                f"object member {head.label!r} is not a rank-1 "
                f"{MEMBER_PREFIX}KEY symbol"
            )
        return head.label[len(MEMBER_PREFIX) :]

    @staticmethod
    def _iter_spine(
        label: str, node: Tree, address: Tuple[int, ...]
    ) -> Iterator[Tuple[Tree, Tuple[int, ...]]]:
        """Walk a cons spine iteratively, yielding (head, head address)."""
        while node.label == label:
            if len(node.children) != 2:
                raise EncodingError(
                    f"list symbol {label!r} used with rank "
                    f"{len(node.children)}, expected 2"
                )
            yield node.children[0], address + (1,)
            node = node.children[1]
            address = address + (2,)
        if node.label != HASH_LABEL or node.children:
            raise EncodingError(
                f"list spine of {label!r} ends in {node.label!r}, "
                f"expected the terminator {HASH_LABEL!r}"
            )

    def roundtrip(self, document: JsonValue) -> JsonValue:
        """Encode then decode — identity on modeled documents."""
        tree, values = self.encode_with_values(document)
        return self.decode(tree, values)
