"""Stopped computations and reachability (Definition 3 of the paper).

``M_x`` extends ``M`` with a fresh input constant ``x`` translated to the
pair ``⟨q, x⟩`` in every state.  Running ``M_x`` on ``s[u ← x]`` "stops"
the translation at the input node ``u``; the positions of the ``⟨q, x⟩``
leaves in the result are exactly the output paths paired with ``u`` by
io-paths.  We implement the stopped run directly, without materializing
``M_x``: the computation proceeds along the path ``u`` only, which is all
that Definition 3 needs.

Every off-path subtree is translated through the compiled batch engine
(:func:`repro.engine.engine_for`), whose persistent ``(state, node-uid)``
memo is shared with every other evaluation entry point — so a batch of
stopped runs on the same input (the characteristic-sample construction
and the io-path enumeration fire thousands of them) pays for each
off-path translation once, iteratively, with no recursion-depth limit on
the off-path subtrees.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UndefinedTransductionError
from repro.trees.lcp import BOTTOM
from repro.trees.paths import Path, node_to_path
from repro.trees.tree import Tree
from repro.transducers.dtop import DTOP
from repro.transducers.rhs import Call, StateName, calls_in

#: Marker label for a stopped state call ``⟨q, x⟩`` in a stopped run.
class Stopped:
    """Label ``⟨q, x⟩``: state ``q`` stopped at the distinguished input."""

    __slots__ = ("state",)

    def __init__(self, state: StateName):
        self.state = state

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stopped) and other.state == self.state

    def __hash__(self) -> int:
        return hash(("Stopped", self.state))

    def __repr__(self) -> str:
        return f"⟨{self.state}, x⟩"


def run_stopped(transducer: DTOP, input_tree: Tree, u: Path) -> Tree:
    """``[[M_x]](s[u ← x])`` with off-path subtrees translated normally.

    ``u`` must belong to ``input_tree``.  The result is a tree over the
    output alphabet whose extra leaves are labeled :class:`Stopped`.
    Raises :class:`UndefinedTransductionError` when some off-path
    translation is undefined.
    """
    # Imported here: this module is pulled in by the package __init__,
    # before repro.engine (which imports repro.transducers.rhs) exists.
    from repro.engine import engine_for

    engine = engine_for(transducer)

    def eval_along(state: StateName, node: Tree, remaining: Path) -> Tree:
        if not remaining:
            return Tree(Stopped(state), ())
        (label, index), rest = remaining[0], remaining[1:]
        if node.label != label:
            raise UndefinedTransductionError(
                f"path expects {label!r}, tree has {node.label!r}"
            )
        rhs = transducer.rhs(state, label)
        if rhs is None:
            raise UndefinedTransductionError(
                f"no rule for ({state!r}, {label!r})"
            )
        return instantiate(rhs, node, index, rest)

    def instantiate(rhs: Tree, node: Tree, index: int, rest: Path) -> Tree:
        head = rhs.label
        if isinstance(head, Call):
            child = node.children[head.var - 1]
            if head.var == index:
                return eval_along(head.state, child, rest)
            # Off-path: a full translation, served by the engine's
            # persistent memo (iterative — safe on deep subtrees).
            return engine.eval_state(head.state, child)
        return Tree(
            head,
            tuple(instantiate(c, node, index, rest) for c in rhs.children),
        )

    def start(part: Tree) -> Tree:
        head = part.label
        if isinstance(head, Call):
            return eval_along(head.state, input_tree, u)
        return Tree(head, tuple(start(c) for c in part.children))

    return start(transducer.axiom)


def stopped_positions(result: Tree) -> Iterator[Tuple[Tuple[int, ...], StateName]]:
    """All ``(address, state)`` of :class:`Stopped` leaves of a stopped run."""
    for address, node in result.subtrees():
        if isinstance(node.label, Stopped):
            yield address, node.label.state


def state_sequence(transducer: DTOP, input_tree: Tree, u: Path) -> Tuple[StateName, ...]:
    """The classical "state sequence" of ``s`` at ``u``.

    The sequence (with repetitions, in left-to-right output order) of
    states in which ``M`` processes the input node addressed by ``u``.
    """
    result = run_stopped(transducer, input_tree, u)
    return tuple(state for _, state in sorted(stopped_positions(result)))


def reaches(
    transducer: DTOP, input_tree: Tree, u: Path, v: Path
) -> Optional[StateName]:
    """Definition 3: the state ``q`` such that ``(u, v)`` reaches ``q``.

    Returns the state at output path ``v`` of the stopped run on
    ``input_tree`` (which must contain ``u``), or ``None`` if ``v`` does
    not address a stopped leaf.
    """
    try:
        result = run_stopped(transducer, input_tree, u)
    except UndefinedTransductionError:
        return None
    current = result
    for label, index in v:
        if current.label != label or not 1 <= index <= current.arity:
            return None
        current = current.children[index - 1]
    if isinstance(current.label, Stopped):
        return current.label.state
    return None
