"""Composition of DTOPs.

Deterministic top-down tree transducers are closed under composition
(Engelfriet's classical result [8] cited by the paper; for total DTOPs
the product construction below is exact).  Composition is useful in the
learning context for building targets ("apply the learned cleanup, then
the learned rendering") and for testing — e.g. composing ``τ_flip`` with
itself yields the identity on its domain, which the equivalence checker
can verify.

Construction: states of ``second ∘ first`` are pairs ``(q2, q1)``.  The
rule for ``((q2, q1), f)`` is obtained by *symbolically* running
``second`` from ``q2`` over the right-hand side ``rhs1(q1, f)``: output
symbols of ``first`` are consumed by ``second``'s rules immediately,
and when ``second`` (in state ``p``) meets a call ``⟨q1', x_i⟩`` of
``first``, the composed machine emits ``⟨(p, q1'), x_i⟩``.

The construction is exact whenever ``second`` is defined on every
intermediate output it is fed; if some symbolic run gets stuck, the
composed transducer simply lacks that rule (its domain shrinks
accordingly), mirroring the semantics of function composition of
partial functions — except that deleted-then-required checks cannot be
expressed, exactly the inspection caveat of Section 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TransducerError, UndefinedTransductionError
from repro.trees.tree import Tree
from repro.transducers.dtop import DTOP
from repro.transducers.rhs import Call, StateName


class _Stuck(Exception):
    """Symbolic evaluation met an undefined rule of the outer machine."""


def _symbolic(second: DTOP, state: StateName, part: Tree, pending: Set) -> Tree:
    """Run ``second`` from ``state`` over an rhs tree of ``first``.

    Calls of ``first`` become composed-state calls; output of ``first``
    is consumed by ``second``'s rules on the fly.
    """
    label = part.label
    if isinstance(label, Call):
        pending.add((state, label.state))
        return Tree(Call((state, label.state), label.var), ())
    rhs2 = second.rhs(state, label)
    if rhs2 is None:
        raise _Stuck(state, label)
    return _instantiate(second, rhs2, part, pending)


def _instantiate(second: DTOP, rhs2: Tree, part: Tree, pending: Set) -> Tree:
    label = rhs2.label
    if isinstance(label, Call):
        return _symbolic(second, label.state, part.children[label.var - 1], pending)
    if rhs2.is_leaf:
        return rhs2
    return Tree(
        label,
        tuple(_instantiate(second, child, part, pending) for child in rhs2.children),
    )


def compose(first: DTOP, second: DTOP) -> DTOP:
    """The DTOP computing ``second(first(s))``.

    Requires the output alphabet of ``first`` to be contained in the
    input alphabet of ``second``.  For inputs where ``second`` is
    undefined on an intermediate output that the symbolic construction
    cannot resolve, the composed transducer is undefined too (possibly
    on a slightly larger set — deletion interacts with inspection, see
    the module docstring).
    """
    for symbol, rank in first.output_alphabet.items():
        if symbol in second.input_alphabet and (
            second.input_alphabet.rank(symbol) != rank
        ):
            raise TransducerError(
                f"intermediate symbol {symbol!r} has rank {rank} from the "
                f"first machine but {second.input_alphabet.rank(symbol)} "
                f"into the second"
            )

    pending: Set[Tuple[StateName, StateName]] = set()
    try:
        axiom = _compose_axioms(first, second, pending)
    except _Stuck as stuck:
        raise TransducerError(
            f"the outer transducer is undefined on the inner axiom "
            f"(state {stuck.args[0]!r} on symbol {stuck.args[1]!r})"
        ) from None

    rules: Dict[Tuple[Tuple[StateName, StateName], str], Tree] = {}
    done: Set[Tuple[StateName, StateName]] = set()
    while pending - done:
        q2, q1 = sorted(pending - done, key=repr)[0]
        done.add((q2, q1))
        for symbol in first.input_alphabet:
            rhs1 = first.rhs(q1, symbol)
            if rhs1 is None:
                continue
            try:
                rules[((q2, q1), symbol)] = _symbolic(second, q2, rhs1, pending)
            except _Stuck:
                continue  # composed machine undefined here
    return DTOP(first.input_alphabet, second.output_alphabet, axiom, rules)


def compose_chain(
    machines: Sequence[DTOP],
    earliest: bool = False,
    labels: Optional[Sequence[str]] = None,
) -> DTOP:
    """Fuse a pipeline of DTOPs into one machine: ``m_k ∘ … ∘ m_1``.

    ``machines`` are listed in application order — the first machine runs
    first — and folded left through :func:`compose`, so a K-stage
    pipeline becomes a single DTOP executed in one pass instead of K
    full passes over K-1 intermediate trees.

    ``earliest=True`` additionally normalizes the fused machine through
    :func:`~repro.transducers.earliest.to_earliest` (states renamed to
    ``e0, e1, …``): identical outputs on the fused domain, often far
    fewer states than the raw pair-state product.  Caveat: earliest
    normalization returns a machine/inspection *pair*; the machine
    alone — which is what a fused pipeline must be — may be defined on
    a superset of the fused domain (the Section 7 inspection caveat:
    output that no longer depends on some input part stops failing on
    it).  Use ``earliest=False`` when exact domain preservation
    matters more than state count.

    ``labels`` names the stages for error messages (defaults to
    ``stage 1 … stage K``): an alphabet-incompatible link raises a
    :class:`~repro.errors.TransducerError` naming the offending pair.
    """
    machines = list(machines)
    if not machines:
        raise TransducerError("compose_chain needs at least one transducer")
    if labels is None:
        stage_labels = [f"stage {i + 1}" for i in range(len(machines))]
    else:
        stage_labels = [str(label) for label in labels]
        if len(stage_labels) != len(machines):
            raise TransducerError(
                f"compose_chain got {len(machines)} machines but "
                f"{len(stage_labels)} labels"
            )
    fused = machines[0]
    for index in range(1, len(machines)):
        try:
            fused = compose(fused, machines[index])
        except TransducerError as error:
            raise TransducerError(
                f"cannot fuse pipeline link "
                f"{stage_labels[index - 1]!r} -> {stage_labels[index]!r}: "
                f"{error}"
            ) from None
    if earliest:
        from repro.transducers.earliest import to_earliest

        fused, _domain, _info = to_earliest(fused)
    return fused


def _compose_axioms(first: DTOP, second: DTOP, pending: Set) -> Tree:
    """Push ``second``'s axiom through ``first``'s axiom."""

    def through_first(part: Tree, state2: StateName) -> Tree:
        # Evaluate second from state2 over first's axiom tree ``part``.
        label = part.label
        if isinstance(label, Call):
            # first's axiom call ⟨q1, x0⟩: compose states.
            pending.add((state2, label.state))
            return Tree(Call((state2, label.state), 0), ())
        rhs2 = second.rhs(state2, label)
        if rhs2 is None:
            raise _Stuck(state2, label)
        return instantiate(rhs2, part)

    def instantiate(rhs2: Tree, part: Tree) -> Tree:
        label = rhs2.label
        if isinstance(label, Call):
            return through_first(part.children[label.var - 1], label.state)
        if rhs2.is_leaf:
            return rhs2
        return Tree(
            label, tuple(instantiate(child, part) for child in rhs2.children)
        )

    def outer(part: Tree) -> Tree:
        label = part.label
        if isinstance(label, Call):
            # second's axiom call ⟨q2, x0⟩ applied to first's whole output.
            return through_first(first.axiom, label.state)
        if part.is_leaf:
            return part
        return Tree(label, tuple(outer(child) for child in part.children))

    return outer(second.axiom)
