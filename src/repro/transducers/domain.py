"""The implicit domain automaton of a DTOP.

The domain of a DTOP is accepted by a DTTA (cf. Proposition 2(1) of
Engelfriet–Maneth–Seidl, cited below Example 1 of the paper).  Its states
are *sets* of transducer states: all states that simultaneously process an
input node must have defined rules.  ``effective_domain`` intersects this
implicit automaton with a supplied inspection DTTA, producing a trim,
minimal automaton for ``dom([[M]]|L(A))`` — the domain ``D`` Section 7's
compatibility conditions quantify over.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.automata.dtta import DTTA
from repro.automata.ops import minimize, product
from repro.trees.alphabet import Symbol
from repro.transducers.dtop import DTOP
from repro.transducers.rhs import StateName, calls_in

DomainState = FrozenSet[StateName]


def domain_dtta(transducer: DTOP) -> DTTA:
    """The DTTA accepting exactly ``dom([[M]])``.

    States are frozensets of transducer states; the empty set is the
    universal ("anything accepted here") state, which arises below deleted
    input variables.
    """
    alphabet = transducer.input_alphabet
    initial: DomainState = frozenset(
        c.state for _, c in calls_in(transducer.axiom)
    )
    transitions: Dict[Tuple[DomainState, Symbol], Tuple[DomainState, ...]] = {}
    seen: Set[DomainState] = {initial}
    frontier = [initial]
    while frontier:
        group = frontier.pop()
        for symbol, rank in alphabet.items():
            needed: Dict[int, Set[StateName]] = {i: set() for i in range(1, rank + 1)}
            defined = True
            for state in group:
                rhs = transducer.rhs(state, symbol)
                if rhs is None:
                    defined = False
                    break
                for _, rule_call in calls_in(rhs):
                    needed[rule_call.var].add(rule_call.state)
            if not defined:
                continue
            children = tuple(
                frozenset(needed[i]) for i in range(1, rank + 1)
            )
            transitions[(group, symbol)] = children
            for child in children:
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
    return DTTA(alphabet, initial, transitions)


def effective_domain(transducer: DTOP, inspection: Optional[DTTA] = None) -> DTTA:
    """Minimal trim DTTA for ``dom([[M]]|L(A))``.

    With ``inspection=None`` this is just the minimized implicit domain of
    the transducer itself.
    """
    implicit = domain_dtta(transducer)
    if inspection is None:
        return minimize(implicit)
    return minimize(product(implicit, inspection))
