"""Origin-tracking evaluation of a DTOP.

For value rehydration (and provenance generally) we need to know, for
every node of the output tree, which input node the emitting rule was
reading.  ``apply_with_origins`` evaluates the transducer while
threading Dewey addresses on both sides; it costs O(|output|) — no
memoization is possible because each output position is distinct.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import UndefinedTransductionError
from repro.trees.tree import Tree
from repro.transducers.dtop import DTOP
from repro.transducers.rhs import Call, StateName

Address = Tuple[int, ...]


def apply_with_origins(
    transducer: DTOP, source: Tree
) -> Tuple[Tree, Dict[Address, Address]]:
    """``[[M]](s)`` plus a map «output address → originating input address».

    The origin of an output node is the input node whose rule emitted it
    (for axiom-emitted output, the root).  Raises
    :class:`UndefinedTransductionError` outside the domain.
    """
    origins: Dict[Address, Address] = {}

    def eval_state(state: StateName, node: Tree, in_addr: Address, out_addr: Address) -> Tree:
        rhs = transducer.rhs(state, node.label)
        if rhs is None:
            raise UndefinedTransductionError(
                f"no rule for state {state!r} on symbol {node.label!r}"
            )
        return instantiate(rhs, node, in_addr, out_addr)

    def instantiate(part: Tree, node: Tree, in_addr: Address, out_addr: Address) -> Tree:
        label = part.label
        if isinstance(label, Call):
            child = node.children[label.var - 1]
            return eval_state(label.state, child, in_addr + (label.var,), out_addr)
        origins[out_addr] = in_addr
        children = tuple(
            instantiate(child, node, in_addr, out_addr + (i,))
            for i, child in enumerate(part.children, start=1)
        )
        return Tree(label, children)

    def instantiate_axiom(part: Tree, out_addr: Address) -> Tree:
        label = part.label
        if isinstance(label, Call):
            return eval_state(label.state, source, (), out_addr)
        origins[out_addr] = ()
        children = tuple(
            instantiate_axiom(child, out_addr + (i,))
            for i, child in enumerate(part.children, start=1)
        )
        return Tree(label, children)

    result = instantiate_axiom(transducer.axiom, ())
    return result, origins
