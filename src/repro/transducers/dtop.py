"""The deterministic top-down tree transducer (Definition 1).

A :class:`DTOP` is a tuple ``(Q, F, G, ax, rhs)``.  Evaluation follows the
recursive definition of ``[[M]]_q`` literally, with **persistent**
memoization on ``(state, input-node uid)``: because trees are interned
(:mod:`repro.trees.tree`), a subtree shared between two inputs — or
between two runs — is recognized by identity and translated once over the
transducer's lifetime.  The learner's inner loops (RPNI merging,
equivalence checks, characteristic-sample generation) evaluate the same
machine on heavily overlapping inputs, which is exactly the access
pattern this cache serves; :attr:`DTOP.cache_stats` exposes the hit/miss
counters and :meth:`DTOP.clear_caches` drops the memo.

The cache is sound because a :class:`DTOP` is immutable after
construction (treat ``rules`` as frozen — mutating it invalidates the
memo) and tree uids are never reused.  For outputs that are exponentially
larger than the input (the paper's monadic-to-full-binary example),
:meth:`DTOP.apply_dag` evaluates straight into a minimal DAG in time
linear in the input size.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.errors import TransducerError, UndefinedTransductionError
from repro.trees.alphabet import RankedAlphabet, Symbol
from repro.trees.dag import Dag, DagNode
from repro.trees.tree import Tree
from repro.transducers.rhs import Call, StateName, calls_in, is_call

RuleKey = Tuple[StateName, Symbol]


class DTOP:
    """A deterministic top-down tree transducer ``(Q, F, G, ax, rhs)``.

    Parameters
    ----------
    input_alphabet, output_alphabet:
        The ranked alphabets ``F`` and ``G``.
    axiom:
        A tree over ``T_G(Q × {x0})`` — calls must use variable 0.
    rules:
        Partial map ``(q, f) ↦ rhs`` with rhs over ``T_G(Q × X_k)`` where
        ``k = rank(f)`` — calls use variables ``1…k``.

    The state set is implicit (every state mentioned anywhere); pass
    ``states`` to require extra (possibly unused) states.
    """

    __slots__ = (
        "input_alphabet",
        "output_alphabet",
        "axiom",
        "rules",
        "_states",
        "_memo",
        "_memo_stats",
        "_engine",
    )

    def __init__(
        self,
        input_alphabet: RankedAlphabet,
        output_alphabet: RankedAlphabet,
        axiom: Tree,
        rules: Mapping[RuleKey, Tree],
        states: Iterable[StateName] = (),
    ):
        self.input_alphabet = input_alphabet
        self.output_alphabet = output_alphabet
        self.axiom = axiom
        self.rules: Dict[RuleKey, Tree] = dict(rules)
        found: Set[StateName] = set(states)
        for _, axiom_call in calls_in(axiom):
            if axiom_call.var != 0:
                raise TransducerError(
                    f"axiom call {axiom_call} must use x0"
                )
            found.add(axiom_call.state)
        for (state, symbol), rhs in self.rules.items():
            if symbol not in input_alphabet:
                raise TransducerError(f"rule on unknown input symbol {symbol!r}")
            rank = input_alphabet.rank(symbol)
            found.add(state)
            for _, rule_call in calls_in(rhs):
                if not 1 <= rule_call.var <= max(rank, 0):
                    raise TransducerError(
                        f"rule ({state!r}, {symbol!r}) uses x{rule_call.var} "
                        f"but rank({symbol!r}) = {rank}"
                    )
                found.add(rule_call.state)
        self._states: FrozenSet[StateName] = frozenset(found)
        # Persistent run memo: (state, input-node uid) → output tree.
        # Sound because the transducer and the interned trees are
        # immutable; uids are never reused.
        self._memo: Dict[Tuple[StateName, int], Tree] = {}
        self._memo_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        # Lazily compiled batch engine (repro.engine.engine_for).
        self._engine = None
        self._check_output_ranks(axiom)
        for rhs in self.rules.values():
            self._check_output_ranks(rhs)

    def _check_output_ranks(self, node: Tree) -> None:
        if is_call(node):
            return
        if node.label not in self.output_alphabet:
            raise TransducerError(f"unknown output symbol {node.label!r}")
        if self.output_alphabet.rank(node.label) != node.arity:
            raise TransducerError(
                f"output symbol {node.label!r} used with arity {node.arity}, "
                f"declared rank {self.output_alphabet.rank(node.label)}"
            )
        for child in node.children:
            self._check_output_ranks(child)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def states(self) -> FrozenSet[StateName]:
        return self._states

    @property
    def size(self) -> int:
        """Total size: axiom plus all right-hand sides (node counts)."""
        return self.axiom.size + sum(rhs.size for rhs in self.rules.values())

    def rhs(self, state: StateName, symbol: Symbol) -> Optional[Tree]:
        """``rhs(q, f)`` or ``None`` when undefined."""
        return self.rules.get((state, symbol))

    def rules_of_state(self, state: StateName) -> Dict[Symbol, Tree]:
        return {
            symbol: rhs for (q, symbol), rhs in self.rules.items() if q == state
        }

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def eval_state(self, state: StateName, node: Tree) -> Tree:
        """``[[M]]_q(s)`` through the persistent memo; raises when undefined.

        Results are cached for the lifetime of the transducer, keyed by
        ``(q, s.uid)`` — repeated evaluation on shared subtrees (across
        *different* top-level calls) is O(1).  Failures are not cached.
        """
        key = (state, node.uid)
        cached = self._memo.get(key)
        if cached is not None:
            self._memo_stats["hits"] += 1
            return cached
        self._memo_stats["misses"] += 1
        rhs = self.rules.get((state, node.label))
        if rhs is None:
            raise UndefinedTransductionError(
                f"no rule for state {state!r} on symbol {node.label!r}"
            )
        result = self._instantiate(rhs, node)
        self._memo[key] = result
        return result

    def apply_state(self, state: StateName, node: Tree) -> Tree:
        """``[[M]]_q(s)``; raises when undefined.  Alias of :meth:`eval_state`."""
        return self.eval_state(state, node)

    def _instantiate(self, rhs: Tree, node: Tree) -> Tree:
        label = rhs.label
        if isinstance(label, Call):
            return self.eval_state(label.state, node.children[label.var - 1])
        if rhs.is_leaf:
            return rhs
        return Tree(
            label,
            tuple(self._instantiate(child, node) for child in rhs.children),
        )

    def apply(self, node: Tree) -> Tree:
        """``[[M]](s)``: instantiate the axiom on the whole input.

        Raises :class:`UndefinedTransductionError` outside the domain.
        """
        return self._instantiate_axiom(self.axiom, node)

    def _instantiate_axiom(self, part: Tree, node: Tree) -> Tree:
        label = part.label
        if isinstance(label, Call):
            return self.eval_state(label.state, node)
        if part.is_leaf:
            return part
        return Tree(
            label,
            tuple(self._instantiate_axiom(c, node) for c in part.children),
        )

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Persistent-memo counters: ``hits``, ``misses``, ``entries``."""
        return {**self._memo_stats, "entries": len(self._memo)}

    def clear_caches(self) -> None:
        """Drop the persistent run memo and zero its counters.

        Only needed to release memory (long-lived transducers applied to
        many unrelated inputs) — never for correctness.  Also drops the
        compiled engine set *entirely* (tables and every other execution
        backend's artifacts and memos): every engine handle derived from
        this machine — including per-shard engines held by a live
        :class:`~repro.serve.service.TransformService` pool, which
        compare the handle at each dispatch — is invalidated, so a
        machine whose ``rules`` were mutated behind the documented
        immutability contract can never keep serving stale tables.  The
        next evaluation recompiles (compilation is linear and cheap).
        """
        self._memo.clear()
        self._memo_stats["hits"] = 0
        self._memo_stats["misses"] = 0
        if self._engine is not None:
            self._engine.clear()
            self._engine = None

    def try_apply(self, node: Tree) -> Optional[Tree]:
        """``[[M]](s)`` or ``None`` when the input is outside the domain."""
        try:
            return self.apply(node)
        except UndefinedTransductionError:
            return None

    def defined_on(self, node: Tree) -> bool:
        """Membership of ``s`` in ``dom([[M]])``."""
        return self._defined(frozenset(c.state for _, c in calls_in(self.axiom)), node)

    def _defined(self, states: FrozenSet[StateName], node: Tree) -> bool:
        needed: Dict[int, Set[StateName]] = {}
        for state in states:
            rhs = self.rules.get((state, node.label))
            if rhs is None:
                return False
            for _, rule_call in calls_in(rhs):
                needed.setdefault(rule_call.var, set()).add(rule_call.state)
        return all(
            self._defined(frozenset(sub_states), node.children[var - 1])
            for var, sub_states in needed.items()
        )

    # ------------------------------------------------------------------
    # DAG-producing evaluation (linear time in the input size)
    # ------------------------------------------------------------------

    def apply_dag(self, node: Tree, pool: Optional[Dag] = None) -> DagNode:
        """``[[M]](s)`` as a hash-consed DAG node.

        Runs in time O(|s| · |M|): each (state, input-subtree) pair is
        translated once and shared, so outputs exponentially larger than
        the input stay polynomial in memory.
        """
        pool = pool if pool is not None else Dag()
        memo: Dict[Tuple[StateName, int], DagNode] = {}

        def eval_state(state: StateName, current: Tree) -> DagNode:
            key = (state, current.uid)
            cached = memo.get(key)
            if cached is not None:
                return cached
            rhs = self.rules.get((state, current.label))
            if rhs is None:
                raise UndefinedTransductionError(
                    f"no rule for state {state!r} on symbol {current.label!r}"
                )
            result = instantiate(rhs, current)
            memo[key] = result
            return result

        def instantiate(rhs: Tree, current: Tree) -> DagNode:
            label = rhs.label
            if isinstance(label, Call):
                return eval_state(label.state, current.children[label.var - 1])
            return pool.make(
                label, tuple(instantiate(child, current) for child in rhs.children)
            )

        def instantiate_axiom(part: Tree) -> DagNode:
            label = part.label
            if isinstance(label, Call):
                return eval_state(label.state, node)
            return pool.make(
                label, tuple(instantiate_axiom(child) for child in part.children)
            )

        return instantiate_axiom(self.axiom)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def rename(self, mapping: Mapping[StateName, StateName]) -> "DTOP":
        """Isomorphic copy with states renamed by ``mapping``.

        Renaming cannot invalidate a well-formed machine, so the copy is
        built directly (no re-validation) with a fresh run memo.
        """

        def rename_tree(node: Tree) -> Tree:
            label = node.label
            if isinstance(label, Call):
                return Tree(Call(mapping.get(label.state, label.state), label.var), ())
            return Tree(label, tuple(rename_tree(c) for c in node.children))

        clone: DTOP = object.__new__(DTOP)
        clone.input_alphabet = self.input_alphabet
        clone.output_alphabet = self.output_alphabet
        clone.axiom = rename_tree(self.axiom)
        clone.rules = {
            (mapping.get(q, q), f): rename_tree(rhs)
            for (q, f), rhs in self.rules.items()
        }
        clone._states = frozenset(mapping.get(q, q) for q in self._states)
        clone._memo = {}
        clone._memo_stats = {"hits": 0, "misses": 0}
        clone._engine = None
        return clone

    def __repr__(self) -> str:
        return (
            f"DTOP(states={len(self._states)}, rules={len(self.rules)}, "
            f"size={self.size})"
        )

    def describe(self) -> str:
        """Human-readable listing in the paper's rule notation."""
        lines = [f"axiom: {self.axiom}"]
        for (state, symbol), rhs in sorted(
            self.rules.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
        ):
            rank = self.input_alphabet.rank(symbol)
            variables = ", ".join(f"x{i}" for i in range(1, rank + 1))
            pattern = f"{symbol}({variables})" if rank else symbol
            lines.append(f"  {state}({pattern}) → {rhs}")
        return "\n".join(lines)
