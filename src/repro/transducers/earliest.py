"""The earliest normal form (Section 3 of the paper).

A DTOP is *earliest* when every state's outputs have no common prefix
(``out_[[M]]q(ε) = ⊥``, Definition 8).  Following Engelfriet–Maneth–Seidl
(the paper's [12]), any DTOP (with a domain inspection automaton) can be
transformed into an earliest one:

1. compute, for every reachable pair ``(q, d)`` of a transducer state and
   a domain-automaton state, the tree ``out(q, d) = ⊔ {[[M]]_q(s) | s ∈
   L(D, d)}`` — a Kleene fixpoint from ``⊥``;
2. take as new states the triples ``(q, d, v)`` with ``v`` a ``⊥``-position
   of ``out(q, d)``: "state ``q`` on domain type ``d``, everything above
   ``v`` already emitted";
3. re-root the (prefix-filled) right-hand sides at ``v``.

The construction also realizes compatibility conditions (C1) (maximal
output relative to ``D``) and (C2) (no superfluous rules) of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.automata.dtta import DTTA, State as DState
from repro.automata.ops import minimal_witness_trees
from repro.errors import TransducerError
from repro.trees.alphabet import RankedAlphabet
from repro.trees.lcp import BOTTOM, bottom_positions, is_bottom, lcp, lcp_many
from repro.trees.tree import Tree
from repro.transducers.domain import effective_domain
from repro.transducers.dtop import DTOP
from repro.transducers.rhs import Call, StateName

Pair = Tuple[StateName, DState]


@dataclass(frozen=True)
class EState:
    """An earliest-transducer state ``(q, d, v)``.

    ``q``: original transducer state; ``d``: domain-automaton state;
    ``v``: Dewey address of a ``⊥`` in ``out(q, d)``.
    """

    q: StateName
    d: DState
    v: Tuple[int, ...]

    def __str__(self) -> str:
        position = ".".join(map(str, self.v)) or "ε"
        return f"({self.q}@{self.d}|{position})"


@dataclass(frozen=True)
class _Marker:
    """Internal leaf marker used while filling right-hand sides."""

    q: StateName
    d: DState
    v: Tuple[int, ...]
    var: int


def reachable_pairs(transducer: DTOP, domain: DTTA) -> Set[Pair]:
    """All pairs ``(q, d)`` arising in the parallel run of ``M`` and ``D``.

    Raises :class:`TransducerError` if ``D`` allows a symbol for which a
    participating state has no rule — callers should pass the *effective*
    domain (:func:`repro.transducers.domain.effective_domain`) to avoid
    this.
    """
    initial = {
        (c.label.state, domain.initial)
        for _, c in transducer.axiom.subtrees()
        if isinstance(c.label, Call)
    }
    seen: Set[Pair] = set(initial)
    frontier: List[Pair] = list(initial)
    while frontier:
        q, d = frontier.pop()
        for symbol in domain.allowed_symbols(d):
            rhs = transducer.rhs(q, symbol)
            if rhs is None:
                raise TransducerError(
                    f"domain allows {symbol!r} at {d!r} but state {q!r} "
                    f"has no rule for it; pass the effective domain"
                )
            children = domain.transitions[(d, symbol)]
            for _, call in rhs.subtrees():
                if isinstance(call.label, Call):
                    pair = (call.label.state, children[call.label.var - 1])
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)
    return seen


#: Instruction opcodes of the compiled fixpoint templates (postorder,
#: replayed with an operand stack — same shape as repro.engine.compile).
_FP_CONST = 0  # operand: a ground (call-free) output subtree
_FP_CALL = 1  # operand: the (q', d_i) pair whose table value to push
_FP_MAKE = 2  # operands: (label, arity)


def _compile_fixpoint_rhs(
    rhs: Tree, children: Tuple[DState, ...]
) -> Tuple[Tuple, ...]:
    """Flatten ``rhs[⟨q',x_i⟩ ← out(q',d_i)]`` into a postorder template.

    Call-free subtrees collapse to one ``_FP_CONST``; each call becomes a
    ``_FP_CALL`` naming the ``(q', d_i)`` table slot directly, so every
    fixpoint round replays the template iteratively instead of
    re-walking the rhs tree recursively.
    """
    # Imported at call time, like out_table's engine import (cycle note
    # there); shares the engine compiler's has-call analysis.
    from repro.engine.compile import _call_flags

    has_call = _call_flags(rhs)
    program: List[Tuple] = []
    walk: List[Tuple[Tree, bool]] = [(rhs, False)]
    while walk:
        node, expanded = walk.pop()
        if expanded:
            program.append((_FP_MAKE, node.label, len(node.children)))
            continue
        if not has_call[node.uid]:
            program.append((_FP_CONST, node))
            continue
        label = node.label
        if isinstance(label, Call):
            program.append((_FP_CALL, (label.state, children[label.var - 1])))
            continue
        walk.append((node, True))
        for child in reversed(node.children):
            walk.append((child, False))
    return tuple(program)


def _replay_fixpoint(program: Tuple[Tuple, ...], table: Dict[Pair, Tree]) -> Tree:
    """Instantiate one compiled template under the current table."""
    operands: List[Tree] = []
    push = operands.append
    for instruction in program:
        opcode = instruction[0]
        if opcode == _FP_CONST:
            push(instruction[1])
        elif opcode == _FP_CALL:
            push(table[instruction[1]])
        else:  # _FP_MAKE
            arity = instruction[2]
            if arity:
                made = Tree(instruction[1], tuple(operands[-arity:]))
                del operands[-arity:]
            else:
                made = Tree(instruction[1], ())
            push(made)
    return operands[-1]


def out_table(transducer: DTOP, domain: Optional[DTTA] = None) -> Dict[Pair, Tree]:
    """``out(q, d)`` for every reachable pair — the ``⊔`` of all outputs.

    ``domain`` defaults to the transducer's own effective domain.

    The defining equation ``out(q,d) = ⊔_f rhs(q,f)[⟨q',x_i⟩ ←
    out(q',d_i)]`` can have several fixpoints (a state whose every output
    is the same tree through recursion admits both the true constant and
    the trivial ``⊥``), and the *largest* one is the right value.  We
    therefore start from a concrete over-approximation — the actual
    output on a minimal witness tree of each domain state, evaluated on
    the compiled batch engine — and iterate downward to the greatest
    fixpoint below the start.

    The iteration is compiled: each (q, d, f) right-hand side is
    flattened **once** into a postorder instruction template over the
    shared hash-consed DAG (call-free subtrees collapse to constants,
    calls address table slots directly), and a worklist then re-evaluates
    only the pairs whose dependencies actually changed — chaotic
    iteration of a monotone decreasing operator, whose limit is
    order-independent and equal to the round-based Kleene sweep the
    interpreted reference (:func:`_out_table_reference`) computes.  All
    ``⊔`` steps hit the global uid-pair memo of :mod:`repro.trees.lcp`.
    """
    # Imported here: this module is pulled in by the package __init__,
    # before repro.engine (which imports repro.transducers.rhs) exists.
    from repro.engine import engine_for

    if domain is None:
        domain = effective_domain(transducer)
    pairs = reachable_pairs(transducer, domain)
    witnesses = minimal_witness_trees(domain)
    engine = engine_for(transducer)
    table: Dict[Pair, Tree] = {
        (q, d): engine.eval_state(q, witnesses[d]) for q, d in pairs
    }
    templates: Dict[Pair, List[Tuple[Tuple, ...]]] = {}
    dependents: Dict[Pair, List[Pair]] = {}
    for pair in pairs:
        q, d = pair
        programs: List[Tuple[Tuple, ...]] = []
        for symbol in domain.allowed_symbols(d):
            children = domain.transitions[(d, symbol)]
            program = _compile_fixpoint_rhs(transducer.rules[(q, symbol)], children)
            programs.append(program)
            for instruction in program:
                if instruction[0] == _FP_CALL:
                    dependents.setdefault(instruction[1], []).append(pair)
        templates[pair] = programs
    pending: List[Pair] = sorted(pairs, key=lambda qd: (str(qd[0]), repr(qd[1])))
    queued: Set[Pair] = set(pending)
    cursor = 0
    while cursor < len(pending):
        pair = pending[cursor]
        cursor += 1
        queued.discard(pair)
        current = table[pair]
        updated = current
        for program in templates[pair]:
            updated = lcp(updated, _replay_fixpoint(program, table))
            if is_bottom(updated):
                break  # ⊥ is the least element; no candidate lowers it
        if updated is not current:
            table[pair] = updated
            for dependent in dependents.get(pair, ()):
                if dependent not in queued:
                    queued.add(dependent)
                    pending.append(dependent)
    return table


def _out_table_reference(
    transducer: DTOP, domain: Optional[DTTA] = None
) -> Dict[Pair, Tree]:
    """The round-based Kleene iteration of ``out(q, d)``, uncompiled.

    Kept as the differential-testing reference for :func:`out_table`:
    recursive ``_subst_calls`` substitution, full sweeps until
    stabilization, interpreter-evaluated seeds.
    """
    if domain is None:
        domain = effective_domain(transducer)
    pairs = reachable_pairs(transducer, domain)
    witnesses = minimal_witness_trees(domain)
    table: Dict[Pair, Tree] = {
        (q, d): transducer.apply_state(q, witnesses[d]) for q, d in pairs
    }
    changed = True
    while changed:
        changed = False
        for q, d in pairs:
            candidates = [table[(q, d)]]
            for symbol in domain.allowed_symbols(d):
                children = domain.transitions[(d, symbol)]
                rhs = transducer.rules[(q, symbol)]
                candidates.append(_subst_calls(rhs, children, table))
            updated = lcp_many(candidates)
            if updated is not table[(q, d)]:
                table[(q, d)] = updated
                changed = True
    return table


def _subst_calls(
    rhs: Tree, children: Tuple[DState, ...], table: Dict[Pair, Tree]
) -> Tree:
    """Replace every ``⟨q', x_i⟩`` in ``rhs`` by ``out(q', d_i)``."""
    label = rhs.label
    if isinstance(label, Call):
        return table[(label.state, children[label.var - 1])]
    if rhs.is_leaf:
        return rhs
    return Tree(
        label, tuple(_subst_calls(c, children, table) for c in rhs.children)
    )


def is_earliest(transducer: DTOP, domain: Optional[DTTA] = None) -> bool:
    """Definition 8 (relative to ``domain``): every state's ``out`` is ``⊥``.

    Unreachable (unproductive) states are ignored, matching the paper's
    productivity requirement.
    """
    table = out_table(transducer, domain)
    return all(is_bottom(prefix) for prefix in table.values())


def _fill(
    rhs: Tree,
    dstate_of_var: Callable[[int], DState],
    table: Dict[Pair, Tree],
) -> Tree:
    """Fill calls with their ``out`` prefixes, marking each ``⊥`` leaf.

    Every ``⟨q', x_i⟩`` becomes ``out(q', d_i)`` whose ``⊥`` leaves carry
    :class:`_Marker` labels remembering ``(q', d_i, position, i)``.
    """
    label = rhs.label
    if isinstance(label, Call):
        d = dstate_of_var(label.var)
        return _mark(table[(label.state, d)], label.state, d, label.var, ())
    if rhs.is_leaf:
        return rhs
    return Tree(
        label,
        tuple(_fill(c, dstate_of_var, table) for c in rhs.children),
    )


def _mark(prefix: Tree, q: StateName, d: DState, var: int, at: Tuple[int, ...]) -> Tree:
    if is_bottom(prefix):
        return Tree(_Marker(q, d, at, var), ())
    return Tree(
        prefix.label,
        tuple(
            _mark(child, q, d, var, at + (i,))
            for i, child in enumerate(prefix.children, start=1)
        ),
    )


def _subtree_at(node: Tree, position: Tuple[int, ...]) -> Tree:
    for index in position:
        node = node.children[index - 1]
    return node


def _markers_to_calls(node: Tree, name_of: Callable[[EState], StateName]) -> Tree:
    label = node.label
    if isinstance(label, _Marker):
        estate = EState(label.q, label.d, label.v)
        return Tree(Call(name_of(estate), label.var), ())
    if node.is_leaf:
        return node
    return Tree(
        label, tuple(_markers_to_calls(c, name_of) for c in node.children)
    )


def _markers_in(node: Tree) -> List[_Marker]:
    found: List[_Marker] = []
    for _, sub in node.subtrees():
        if isinstance(sub.label, _Marker):
            found.append(sub.label)
    return found


def to_earliest(
    transducer: DTOP,
    domain: Optional[DTTA] = None,
    domain_is_effective: bool = False,
) -> Tuple[DTOP, DTTA, Dict[StateName, EState]]:
    """Construct an earliest DTOP equivalent to ``M`` on ``L(domain)``.

    Returns ``(E, D, info)`` where ``D`` is the effective domain used
    (minimal, trim), ``E`` is earliest and compatible with ``D`` in the
    sense of conditions (C1)/(C2), and ``info`` maps each state of ``E``
    to the :class:`EState` triple it denotes.

    States of ``E`` are strings ``"e0", "e1", …`` in deterministic
    discovery order.

    Pass ``domain_is_effective=True`` when ``domain`` is already the
    minimal trim automaton for ``dom([[M]]|L(domain))`` (avoids renaming
    its states).
    """
    if domain is None or not domain_is_effective:
        domain = effective_domain(transducer, domain)
    if not domain.transitions:
        # ``dom([[M]]|L(domain))`` is empty (a trim DTTA with no
        # transitions accepts nothing): there is no witness tree to
        # seed the out-table from, and nothing to be early *on*.  The
        # earliest machine is the nowhere-defined one — a single
        # rule-less state — trivially satisfying (C1)/(C2) on ∅.
        nowhere = DTOP(
            transducer.input_alphabet,
            transducer.output_alphabet,
            Tree(Call("e0", 0), ()),
            {},
        )
        return nowhere, domain, {"e0": EState(None, domain.initial, ())}
    table = out_table(transducer, domain)

    names: Dict[EState, StateName] = {}
    info: Dict[StateName, EState] = {}
    todo: List[EState] = []

    def name_of(estate: EState) -> StateName:
        if estate not in names:
            name = f"e{len(names)}"
            names[estate] = name
            info[name] = estate
            todo.append(estate)
        return names[estate]

    filled_axiom = _fill(
        transducer.axiom, lambda _var: domain.initial, table
    )
    axiom = _markers_to_calls(filled_axiom, name_of)

    rules: Dict[Tuple[StateName, str], Tree] = {}
    done: Set[EState] = set()
    while todo:
        estate = todo.pop(0)
        if estate in done:
            continue
        done.add(estate)
        for symbol in domain.allowed_symbols(estate.d):
            children = domain.transitions[(estate.d, symbol)]
            rhs = transducer.rules[(estate.q, symbol)]
            filled = _fill(rhs, lambda var: children[var - 1], table)
            rerooted = _subtree_at(filled, estate.v)
            rules[(names[estate], symbol)] = _markers_to_calls(rerooted, name_of)

    earliest = DTOP(
        transducer.input_alphabet,
        transducer.output_alphabet,
        axiom,
        rules,
    )
    return earliest, domain, info
