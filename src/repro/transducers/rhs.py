"""Right-hand-side trees: output trees with embedded state calls.

A rule right-hand side (and the axiom) is a tree over
``T_G(Q × X)`` — output symbols with leaves of the form ``⟨q, x_i⟩``.
We embed the pair as a :class:`Call` label on a leaf of the ordinary
:class:`~repro.trees.tree.Tree` type, so all tree machinery (paths,
substitution, lcp) applies unchanged to right-hand sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Tuple, Union

from repro.errors import TransducerError
from repro.trees.tree import Label, Tree

StateName = Hashable


@dataclass(frozen=True, order=False)
class Call:
    """A state call ``⟨state, x_var⟩`` occurring at a leaf of an rhs tree.

    ``var`` is the input-variable index: 0 only in axioms (``x0`` = the
    whole input), 1-based in rules (``x_i`` = the i-th subtree).
    """

    state: StateName
    var: int

    def __str__(self) -> str:
        return f"⟨{self.state}, x{self.var}⟩"

    def __repr__(self) -> str:
        return f"Call({self.state!r}, x{self.var})"


def call(state: StateName, var: int) -> Tree:
    """A one-node rhs tree consisting of a single state call."""
    return Tree(Call(state, var), ())


def is_call(node: Tree) -> bool:
    """True iff the node is a state-call leaf."""
    return isinstance(node.label, Call)


def is_pure(node: Tree) -> bool:
    """True iff the tree contains no state calls (it is ground output)."""
    if is_call(node):
        return False
    return all(is_pure(child) for child in node.children)


def calls_in(node: Tree) -> Iterator[Tuple[Tuple[int, ...], Call]]:
    """All ``(address, call)`` pairs in an rhs tree, left-to-right."""
    stack: List[Tuple[Tuple[int, ...], Tree]] = [((), node)]
    found: List[Tuple[Tuple[int, ...], Call]] = []
    while stack:
        address, current = stack.pop()
        if isinstance(current.label, Call):
            found.append((address, current.label))
            continue
        for i in range(current.arity, 0, -1):
            stack.append((address + (i,), current.children[i - 1]))
    return iter(sorted(found))


def rhs_tree(spec: Union[Tree, str, Tuple], ) -> Tree:
    """Build an rhs tree from a lightweight nested-tuple spec.

    * a :class:`Tree` is returned unchanged;
    * a string is a 0-ary output symbol;
    * ``("f", child, …)`` is an output symbol with children;
    * ``(state, var)`` where ``var`` is an ``int`` is a state call —
      written e.g. ``("q1", 2)`` for ``⟨q1, x2⟩``.

    Disambiguation: a 2-tuple whose second element is an ``int`` is a
    call; anything else is a symbol application.

    >>> str(rhs_tree(("b", "#", ("q3", 2))))
    'b(#, ⟨q3, x2⟩)'
    """
    if isinstance(spec, Tree):
        return spec
    if isinstance(spec, str):
        return Tree(spec, ())
    if isinstance(spec, tuple):
        if len(spec) == 2 and isinstance(spec[1], int) and not isinstance(spec[0], tuple):
            state, var = spec
            if not isinstance(state, str):
                raise TransducerError(f"call state must be a string, got {state!r}")
            return call(state, var)
        head, *rest = spec
        if not isinstance(head, str):
            raise TransducerError(f"rhs symbol must be a string, got {head!r}")
        return Tree(head, tuple(rhs_tree(child) for child in rest))
    raise TransducerError(f"cannot interpret rhs spec {spec!r}")


def substitute_calls(node: Tree, mapping) -> Tree:
    """Replace each call leaf ``c`` by ``mapping(c)`` (a Tree)."""
    if isinstance(node.label, Call):
        return mapping(node.label)
    if node.is_leaf:
        return node
    return Tree(
        node.label, tuple(substitute_calls(child, mapping) for child in node.children)
    )
