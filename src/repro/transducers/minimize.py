"""The canonical minimal earliest compatible DTOP (Sections 6–7).

Given a transducer ``M`` and an inspection automaton ``A``, we construct
the unique minimal earliest DTOP compatible with ``D = dom([[M]]|L(A))``
(Theorem 28(3)):

1. canonicalize the domain (minimal DTTA, BFS-named);
2. build the earliest transducer (states = ``⊥``-positions of ``out``,
   :mod:`repro.transducers.earliest`);
3. merge semantically equal states by partition refinement — in the
   earliest normal form, state equivalence is exactly equality of rule
   shapes up to state renaming, with the initial partition given by the
   domain class (condition (C0) forbids merging states with different
   restricted domains);
4. rename states ``q0, q1, …`` in deterministic document order.

Equality of canonical forms decides equivalence of DTOPs relative to a
domain — the decidability substrate ([12], [13]) the paper's learning
result rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.automata.dtta import DTTA, State as DState
from repro.automata.ops import canonical_form, enumerate_language
from repro.trees.alphabet import Symbol
from repro.trees.lcp import is_bottom
from repro.trees.tree import Tree
from repro.transducers.domain import effective_domain
from repro.transducers.dtop import DTOP
from repro.transducers.earliest import EState, out_table, reachable_pairs, to_earliest
from repro.transducers.rhs import Call, StateName


@dataclass
class CanonicalDTOP:
    """The canonical minimal earliest compatible transducer for a translation.

    Attributes
    ----------
    dtop:
        The canonical transducer; states are ``"q0", "q1", …`` in
        deterministic document order starting from the axiom.
    domain:
        The canonical minimal DTTA for ``dom(τ)``; states are ints.
    state_domain:
        For each transducer state, the domain state it runs on (the
        ``D``-restricted domain of its io-paths, condition (C0)).
    """

    dtop: DTOP
    domain: DTTA
    state_domain: Dict[StateName, DState] = field(default_factory=dict)

    @property
    def num_states(self) -> int:
        return len(self.dtop.states)

    @property
    def num_rules(self) -> int:
        return len(self.dtop.rules)

    def same_translation(self, other: "CanonicalDTOP") -> bool:
        """Do the two canonical forms denote the same partial function?"""
        return (
            self.dtop.axiom == other.dtop.axiom
            and self.dtop.rules == other.dtop.rules
            and self.domain.initial == other.domain.initial
            and self.domain.transitions == other.domain.transitions
        )

    def describe(self) -> str:
        return self.dtop.describe() + "\ndomain:\n" + self.domain.describe()


def _document_order_rename(dtop: DTOP, prefix: str = "q") -> Tuple[DTOP, Dict[StateName, StateName]]:
    """Rename states in first-occurrence order: axiom first, then rules.

    The traversal is deterministic: axiom calls left-to-right, then for
    each already-ordered state its rules in sorted symbol order, calls
    left-to-right (BFS).
    """
    order: Dict[StateName, StateName] = {}
    queue: List[StateName] = []
    by_state: Dict[StateName, List[Tuple[Symbol, Tree]]] = {}
    for (q, f), rhs in dtop.rules.items():
        by_state.setdefault(q, []).append((f, rhs))

    def visit_tree(node: Tree) -> None:
        if isinstance(node.label, Call):
            state = node.label.state
            if state not in order:
                order[state] = f"{prefix}{len(order)}"
                queue.append(state)
            return
        for child in node.children:
            visit_tree(child)

    visit_tree(dtop.axiom)
    index = 0
    while index < len(queue):
        state = queue[index]
        index += 1
        for _, rhs in sorted(by_state.get(state, ()), key=lambda fr: str(fr[0])):
            visit_tree(rhs)
    # States unreachable from the axiom (none, normally) keep a stable name.
    for state in sorted(dtop.states - set(order), key=str):
        order[state] = f"{prefix}{len(order)}"
    return dtop.rename(order), order


def _skeleton(node: Tree, block: Dict[StateName, int]) -> Tree:
    """Replace calls by (block, var) placeholders for signature comparison."""
    label = node.label
    if isinstance(label, Call):
        return Tree(("call", block[label.state], label.var), ())
    if node.is_leaf:
        return node
    return Tree(label, tuple(_skeleton(c, block) for c in node.children))


def _merge_equivalent(
    earliest: DTOP, info: Dict[StateName, EState]
) -> Tuple[DTOP, Dict[StateName, StateName]]:
    """Partition refinement on an earliest transducer.

    Initial blocks are the domain classes (the minimal domain automaton's
    states); refinement compares rule skeletons.  In the earliest normal
    form this computes exact semantic equivalence of states.
    """
    states = sorted(earliest.states, key=str)
    rules_of: Dict[StateName, List[Tuple[Symbol, Tree]]] = {q: [] for q in states}
    for (q, f), rhs in earliest.rules.items():
        rules_of[q].append((f, rhs))
    for entries in rules_of.values():
        entries.sort(key=lambda fr: str(fr[0]))
    block: Dict[StateName, int] = {}
    key_to_block: Dict[object, int] = {}
    for state in states:
        key = repr(info[state].d)
        if key not in key_to_block:
            key_to_block[key] = len(key_to_block)
        block[state] = key_to_block[key]
    while True:
        key_to_block = {}
        new_block: Dict[StateName, int] = {}
        for state in states:
            signature = tuple(
                (symbol, _skeleton(rhs, block))
                for symbol, rhs in rules_of[state]
            )
            key = (block[state], signature)
            if key not in key_to_block:
                key_to_block[key] = len(key_to_block)
            new_block[state] = key_to_block[key]
        if new_block == block:
            break
        block = new_block
    representative: Dict[int, StateName] = {}
    for state in states:
        representative.setdefault(block[state], state)
    mapping = {state: representative[block[state]] for state in states}
    merged_rules = {
        (mapping[q], f): _rename_calls(rhs, mapping)
        for (q, f), rhs in earliest.rules.items()
        if representative[block[q]] == q
    }
    merged = DTOP(
        earliest.input_alphabet,
        earliest.output_alphabet,
        _rename_calls(earliest.axiom, mapping),
        merged_rules,
    )
    return merged, mapping


def _rename_calls(node: Tree, mapping: Dict[StateName, StateName]) -> Tree:
    label = node.label
    if isinstance(label, Call):
        return Tree(Call(mapping[label.state], label.var), ())
    if node.is_leaf:
        return node
    return Tree(label, tuple(_rename_calls(c, mapping) for c in node.children))


def canonicalize(
    transducer: DTOP, inspection: Optional[DTTA] = None
) -> CanonicalDTOP:
    """The unique minimal earliest compatible DTOP for ``[[M]]|L(A)``.

    This realizes direction 2 ⇒ 3 of Theorem 28.  The result is fully
    deterministic: equal translations yield structurally equal results.
    """
    domain = canonical_form(effective_domain(transducer, inspection))
    earliest, _, info = to_earliest(transducer, domain, domain_is_effective=True)
    merged, merge_map = _merge_equivalent(earliest, info)
    canonical, rename_map = _document_order_rename(merged)
    state_domain: Dict[StateName, DState] = {}
    for old_state, estate in info.items():
        merged_state = merge_map[old_state]
        if merged_state in rename_map:
            state_domain[rename_map[merged_state]] = estate.d
    return CanonicalDTOP(canonical, domain, state_domain)


#: Probe budget of the differential fast path in :func:`equivalent_on`.
_REFUTATION_PROBES = 24


def _differential_refutes(
    left: DTOP, right: DTOP, domain: DTTA, limit: int = _REFUTATION_PROBES
) -> bool:
    """Cheap refutation: do the machines visibly differ on small inputs?

    Enumerates up to ``limit`` members of ``L(domain)`` (``domain`` must
    be the effective domain of ``left`` restricted to the inspection
    language, so ``left`` is defined on all of them) and compares both
    compiled engines on the whole probe forest in one batch sweep each.
    A mismatch — including ``right`` being undefined — proves the
    translations differ; agreement proves nothing and the caller falls
    back to the exact canonical-form comparison.
    """
    # Imported here: this module is pulled in by the package __init__,
    # before repro.engine (which imports repro.transducers.rhs) exists.
    from repro.engine import engine_for

    probes = list(enumerate_language(domain, limit=limit))
    if not probes:
        return False
    left_out = engine_for(left).try_run_batch(probes)
    right_out = engine_for(right).try_run_batch(probes)
    return left_out != right_out


def equivalent_on(
    left: DTOP, right: DTOP, inspection: Optional[DTTA] = None
) -> bool:
    """Decide ``[[M1]]|L(A) = [[M2]]|L(A)`` (as partial functions).

    With ``inspection=None``, decides equality of the full translations
    (including equality of the implicit domains).  Inequivalent machines
    are usually refuted without canonicalizing ``right``: both compiled
    engines run over a small probe forest enumerated from ``left``'s
    effective domain (a by-product of canonicalizing ``left``, which the
    exact check needs anyway), and only on agreement is ``right``
    canonicalized for the exact comparison.
    """
    left_canonical = canonicalize(left, inspection)
    if _differential_refutes(left, right, left_canonical.domain):
        return False
    return left_canonical.same_translation(canonicalize(right, inspection))


# ---------------------------------------------------------------------------
# Compatibility conditions (C0)–(C2) of Definition 27
# ---------------------------------------------------------------------------


def check_c0(transducer: DTOP, inspection: Optional[DTTA] = None) -> bool:
    """(C0): io-paths with different restricted domains reach different states.

    An io-path of ``τ`` *reaches* a state only when the state call sits
    exactly at a ``⊥`` of ``out_τ`` (Definition 3); pairs ``(q, d)``
    where the transducer still owes output (``out(q, d) ≠ ⊥``) are not
    reached by any io-path — this is why Example 6's ``M2`` satisfies
    (C0) despite its single state meeting two domain states in the raw
    parallel run.
    """
    domain = canonical_form(effective_domain(transducer, inspection))
    table = out_table(transducer, domain)
    paired: Dict[StateName, Set[DState]] = {}
    for q, d in reachable_pairs(transducer, domain):
        if is_bottom(table[(q, d)]):
            paired.setdefault(q, set()).add(d)
    return all(len(ds) == 1 for ds in paired.values())


def check_c1(transducer: DTOP, inspection: Optional[DTTA] = None) -> bool:
    """(C1): output production is maximal relative to the domain.

    For every reachable triple ``(q, d_own, d)`` — ``d_own`` from the
    transducer's own implicit domain, ``d`` from the restricted one —
    the common output prefixes must coincide: restricting the domain must
    not reveal output the transducer withheld.
    """
    own = canonical_form(effective_domain(transducer, None))
    restricted = canonical_form(effective_domain(transducer, inspection))
    table_own = out_table(transducer, own)
    table_restricted = out_table(transducer, restricted)
    # Walk the synchronized product of both domains.
    start = [
        (c.label.state, own.initial, restricted.initial)
        for _, c in transducer.axiom.subtrees()
        if isinstance(c.label, Call)
    ]
    seen = set(start)
    frontier = list(start)
    while frontier:
        q, d_own, d = frontier.pop()
        if table_own[(q, d_own)] != table_restricted[(q, d)]:
            return False
        for symbol in restricted.allowed_symbols(d):
            if symbol not in own.allowed_symbols(d_own):
                continue
            own_children = own.transitions[(d_own, symbol)]
            res_children = restricted.transitions[(d, symbol)]
            rhs = transducer.rules[(q, symbol)]
            for _, node in rhs.subtrees():
                if isinstance(node.label, Call):
                    triple = (
                        node.label.state,
                        own_children[node.label.var - 1],
                        res_children[node.label.var - 1],
                    )
                    if triple not in seen:
                        seen.add(triple)
                        frontier.append(triple)
    return True


def check_c2(transducer: DTOP, inspection: Optional[DTTA] = None) -> bool:
    """(C2): no superfluous rules.

    Every rule ``(q, f)`` must be usable: ``q`` reachable in the parallel
    run with the effective domain, paired with some ``d`` that allows
    ``f``.
    """
    domain = canonical_form(effective_domain(transducer, inspection))
    pairs = reachable_pairs(transducer, domain)
    allowed: Dict[StateName, Set[Symbol]] = {}
    for q, d in pairs:
        allowed.setdefault(q, set()).update(domain.allowed_symbols(d))
    for (q, symbol) in transducer.rules:
        if symbol not in allowed.get(q, set()):
            return False
    return True


def is_compatible(transducer: DTOP, inspection: Optional[DTTA] = None) -> bool:
    """All of Definition 27: earliest + (C0) + (C1) + (C2)."""
    domain = canonical_form(effective_domain(transducer, inspection))
    table = out_table(transducer, domain)
    earliest = all(is_bottom(prefix) for prefix in table.values())
    return (
        earliest
        and check_c0(transducer, inspection)
        and check_c1(transducer, inspection)
        and check_c2(transducer, inspection)
    )
