"""Deterministic top-down tree transducers (DTOPs).

The paper's central object (Definition 1): states, an axiom over
``T_G(Q × {x0})``, and rules ``q(f(x1,…,xk)) → t`` with ``t`` over
``T_G(Q × Xk)``.  This package provides the transducer itself, its
semantics, its implicit domain automaton, the *earliest* normal form
(Section 3), and the canonical minimal earliest compatible transducer
(Sections 6–7) together with a decision procedure for equivalence.
"""

from repro.transducers.rhs import Call, calls_in, rhs_tree, is_call, is_pure
from repro.transducers.compose import compose, compose_chain
from repro.transducers.dtop import DTOP
from repro.transducers.run import run_stopped, reaches, state_sequence
from repro.transducers.domain import domain_dtta, effective_domain
from repro.transducers.earliest import is_earliest, out_table, to_earliest
from repro.transducers.minimize import (
    CanonicalDTOP,
    canonicalize,
    equivalent_on,
    is_compatible,
)

__all__ = [
    "Call",
    "calls_in",
    "rhs_tree",
    "is_call",
    "is_pure",
    "compose",
    "compose_chain",
    "DTOP",
    "run_stopped",
    "reaches",
    "state_sequence",
    "domain_dtta",
    "effective_domain",
    "is_earliest",
    "out_table",
    "to_earliest",
    "CanonicalDTOP",
    "canonicalize",
    "equivalent_on",
    "is_compatible",
]
