"""repro.api — the stable high-level facade of the library.

This module is the documented entry surface: everything a typical user
needs — learning a DTOP from examples, running one, normalizing one, and
moving artifacts to and from disk — behind six functions with permissive
input types.  The subpackages remain fully public for advanced use; the
facade only removes the boilerplate of wiring them together.

Quickstart::

    from repro import api

    learned = api.learn([
        ("f(a, b)", "g(b)"),
        ("f(b, a)", "g(a)"),
        ("f(a, a)", "g(a)"),
        ("f(b, b)", "g(b)"),
    ])
    print(api.run(learned, "f(a, b)"))      # g(b)
    text = api.serialize(learned)            # JSON, stable format
    again = api.deserialize(text)            # a DTOP

Trees may be given as :class:`~repro.trees.tree.Tree` objects or as
strings in the paper's term syntax (``"f(a, g(b))"``); transducer
arguments accept a raw :class:`~repro.transducers.dtop.DTOP`, a
:class:`~repro.learning.rpni.LearnedDTOP`, or a
:class:`~repro.transducers.minimize.CanonicalDTOP` interchangeably.

Performance notes
-----------------

All evaluation in the library runs over interned (hash-consed) trees
with persistent memo caches — see ``docs/ARCHITECTURE.md`` for the full
map.  :func:`cache_stats` aggregates the global counters and
:func:`clear_caches` releases the global caches (per-transducer memos are
released with the transducer itself, or via ``DTOP.clear_caches``).
Never mutate a :class:`~repro.trees.tree.Tree` or a label object stored
in one: nodes are shared program-wide.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro import serialize as _serialize
from repro.automata.build import local_dtta_from_trees
from repro.automata.dtta import DTTA
from repro.engine import (
    artifact_stats,
    backend_stats,
    clear_sample_table_caches,
    engine_for,
    reset_artifact_stats,
    reset_backend_stats,
    sample_tables_stats,
)
from repro.errors import UndefinedTransductionError
from repro.learning.rpni import LearnedDTOP, clear_learning_memos, rpni_dtop
from repro.learning.sample import Sample
from repro.trees.lcp import clear_lcp_cache, lcp_cache_stats
from repro.trees.tree import Tree, intern_stats, parse_term, reset_intern_stats
from repro.transducers.dtop import DTOP
from repro.transducers.minimize import CanonicalDTOP, canonicalize, equivalent_on

#: Anything the facade accepts where a tree is expected.
TreeLike = Union[Tree, str]
#: Anything the facade accepts where a transducer is expected.
TransducerLike = Union[DTOP, LearnedDTOP, CanonicalDTOP]

__all__ = [
    "parse_tree",
    "learn",
    "run",
    "run_batch",
    "try_run_batch",
    "compose",
    "fuse",
    "minimize",
    "equivalent",
    "serialize",
    "deserialize",
    "save",
    "load",
    "serve_forever",
    "connect",
    "learn_json",
    "run_json",
    "save_json",
    "load_json",
    "cache_stats",
    "clear_caches",
]


def parse_tree(source: TreeLike) -> Tree:
    """Coerce a tree-like value: parse term-syntax strings, pass trees through.

    >>> parse_tree("f(a, g(b))").size
    4
    """
    if isinstance(source, Tree):
        return source
    return parse_term(source)


def _as_dtop(transducer: TransducerLike) -> DTOP:
    """Unwrap any accepted transducer representation to the raw DTOP."""
    if isinstance(transducer, (LearnedDTOP, CanonicalDTOP)):
        return transducer.dtop
    return transducer


def learn(
    examples: Iterable[Tuple[TreeLike, TreeLike]],
    domain: Optional[DTTA] = None,
) -> LearnedDTOP:
    """Learn a DTOP from ``(input, output)`` example pairs (``RPNI_dtop``).

    ``domain`` is the DTTA for the target's domain language; when omitted
    it is inferred from the example inputs as the smallest *local* DTTA
    containing them (:func:`repro.automata.build.local_dtta_from_trees`)
    — exact for DTD-shaped languages, an over-approximation otherwise.

    The examples must form a partial function and, for the result to be
    the canonical minimal transducer of the target translation, contain a
    characteristic sample (Definition 31); otherwise
    :class:`~repro.errors.InsufficientSampleError` explains what evidence
    is missing.

    The returned :class:`~repro.learning.rpni.LearnedDTOP` carries a
    ``stats`` dict with the run's timings (total / validation / merge
    loop) and cache counters — the compiled sample tables and the
    signature-bucketed merge index — mirrored by the CLI's
    ``learn --stats`` flag; :func:`cache_stats` aggregates the global
    counters.

    >>> learned = learn([("f(a, b)", "g(b)"), ("f(b, a)", "g(a)"),
    ...                  ("f(a, a)", "g(a)"), ("f(b, b)", "g(b)")])
    >>> str(run(learned, "f(a, b)"))
    'g(b)'
    """
    pairs = [(parse_tree(s), parse_tree(t)) for s, t in examples]
    sample = Sample(pairs)
    if domain is None:
        domain = local_dtta_from_trees([s for s, _ in pairs])
    return rpni_dtop(sample, domain)


def run(
    transducer: TransducerLike,
    tree: TreeLike,
    backend: Optional[str] = None,
) -> Tree:
    """Apply a transducer to an input tree: ``[[M]](s)``.

    Raises :class:`~repro.errors.UndefinedTransductionError` when the
    input is outside the transducer's domain.  Evaluation goes through
    the compiled batch engine (:mod:`repro.engine`): the transducer is
    lowered to flat rule tables once, then evaluated iteratively over
    the shared tree DAG — arbitrarily deep inputs are fine, and repeated
    runs over overlapping inputs are incremental through the persistent
    ``(state, node-uid)`` memo.

    ``backend`` selects an execution backend by registry name
    (``tables`` / ``codegen`` / ``numpy``); ``None`` defers to the
    ``REPRO_BACKEND`` environment variable, then the ``tables`` default.
    All backends are byte-identical in outputs and errors.
    """
    return engine_for(_as_dtop(transducer), backend).run(parse_tree(tree))


def _batch_outcomes(
    transducer: TransducerLike,
    trees: Iterable[TreeLike],
    parallel: Optional[int],
    backend: Optional[str] = None,
) -> list:
    """Per-input outcomes, serial or through a sharded worker pool."""
    machine = _as_dtop(transducer)
    forest = [parse_tree(tree) for tree in trees]
    if parallel is not None and parallel > 1:
        from repro.serve import TransformService

        with TransformService(machine, jobs=parallel, backend=backend) as service:
            return list(service.map(forest))
    return engine_for(machine, backend).run_batch_outcomes(forest)


def run_batch(
    transducer: TransducerLike,
    trees: Iterable[TreeLike],
    parallel: Optional[int] = None,
    backend: Optional[str] = None,
) -> list:
    """Apply a transducer to a whole forest in one bottom-up sweep.

    Subtrees shared between batch members (hash-consing makes sharing
    structural) are translated exactly once, so a batch of overlapping
    documents costs one pass over the *distinct* structure.  Raises the
    first input's :class:`~repro.errors.UndefinedTransductionError` when
    any input is outside the domain; use :func:`try_run_batch` for
    per-input outcomes.

    With ``parallel=N`` (N > 1) the forest is sharded across ``N``
    worker processes through :class:`~repro.serve.service.TransformService`
    — compiled tables shipped once per worker, DAG-aware cost-balanced
    chunks, outputs and errors byte-identical to the serial path (the
    repeated-structure memoization then applies per shard rather than
    globally).

    >>> learned = learn([("f(a, b)", "g(b)"), ("f(b, a)", "g(a)"),
    ...                  ("f(a, a)", "g(a)"), ("f(b, b)", "g(b)")])
    >>> [str(t) for t in run_batch(learned, ["f(a, b)", "f(b, b)"])]
    ['g(b)', 'g(b)']
    """
    outcomes = _batch_outcomes(transducer, trees, parallel, backend)
    for outcome in outcomes:
        if isinstance(outcome, Exception):
            raise outcome
    return outcomes


def try_run_batch(
    transducer: TransducerLike,
    trees: Iterable[TreeLike],
    parallel: Optional[int] = None,
    backend: Optional[str] = None,
) -> list:
    """Like :func:`run_batch`, but undefined inputs yield ``None``.

    ``None`` strictly means *outside the transducer's domain*.  An
    infrastructure failure on the parallel path (a worker crash that
    exhausted its retry — :class:`~repro.errors.ServiceError`) is
    raised instead: the affected inputs may well be inside the domain,
    and silently reporting them as undefined would misclassify them.
    """
    results = []
    for outcome in _batch_outcomes(transducer, trees, parallel, backend):
        if isinstance(outcome, UndefinedTransductionError):
            results.append(None)
        elif isinstance(outcome, Exception):
            raise outcome
        else:
            results.append(outcome)
    return results


def compose(
    first: TransducerLike, second: TransducerLike
) -> DTOP:
    """The DTOP computing ``second(first(s))`` (Engelfriet's closure).

    Parity contract, pinned by the test suite: for every ``s`` where
    both sides are defined, ``run(compose(f, g), s) == run(g, run(f, s))``
    — and where the chained run is undefined, so is the composed
    machine (the converse can fail only through the deletion/inspection
    caveat of Section 7, see :mod:`repro.transducers.compose`).

    >>> from repro.workloads.flip import flip_transducer
    >>> twice = compose(flip_transducer(), flip_transducer())
    >>> str(run(twice, "root(#, #)"))
    'root(#, #)'
    """
    from repro.transducers.compose import compose as _compose

    return _compose(_as_dtop(first), _as_dtop(second))


def fuse(
    stages: Iterable[TransducerLike],
    earliest: bool = False,
) -> DTOP:
    """Fold a pipeline of transducers into one single-pass DTOP.

    ``stages`` are listed in application order (the first stage runs
    first); the result computes ``stage_k(… stage_1(s) …)`` in a single
    compiled pass instead of K full passes over K-1 intermediate trees —
    the fused machine then compiles, caches, and serves exactly like any
    other DTOP.  ``earliest=True`` additionally normalizes the result to
    the earliest form — identical outputs, usually fewer states, but
    possibly a *larger* domain (the inspection caveat of
    :func:`~repro.transducers.compose.compose_chain`).

    Parity contract (pinned by the fuzz suite): wherever the staged
    chain ``run(stage_k, … run(stage_1, s))`` is defined, the fused
    machine produces the byte-identical output; where the staged chain
    is undefined, the fused machine is undefined too up to the
    deletion/inspection caveat of :mod:`repro.transducers.compose` —
    for nondeleting stages (and ``earliest=False``) the domains agree
    exactly.

    >>> from repro.workloads.flip import flip_transducer
    >>> twice = fuse([flip_transducer(), flip_transducer()], earliest=True)
    >>> str(run(twice, "root(#, #)"))
    'root(#, #)'
    """
    from repro.transducers.compose import compose_chain

    return compose_chain(
        [_as_dtop(stage) for stage in stages], earliest=earliest
    )


def serve_forever(
    models_dir: str,
    host: str = "127.0.0.1",
    port: int = 7455,
    jobs: Optional[int] = None,
    **knobs: Any,
) -> int:
    """Serve every model under ``models_dir`` over TCP until interrupted.

    The network face of the library: loads ``NAME@VERSION.json``
    artifacts (raw transducers and XML transformation bundles), coalesces
    concurrent requests into micro-batches, and shards each model across
    ``jobs`` worker processes.  Extra ``knobs`` — ``max_batch``,
    ``max_wait_ms``, ``max_pending``, ``stats``, ``metrics``,
    ``log_json``, ``backend`` — are forwarded to
    :func:`repro.server.app.serve_forever`.  Blocks; returns the exit
    code.
    """
    from repro.server import serve_forever as _serve_forever

    return _serve_forever(models_dir, host=host, port=port, jobs=jobs, **knobs)


def connect(host: str, port: int, timeout: float = 120.0):
    """A blocking :class:`~repro.server.client.ServerClient` for a server.

    ``connect(host, port).transform(model, document)`` raises the same
    exception type and message as the local :func:`run` would — remote
    and local failures are interchangeable to callers.
    """
    from repro.server import ServerClient

    return ServerClient(host, port, timeout=timeout)


def minimize(
    transducer: TransducerLike, domain: Optional[DTTA] = None
) -> CanonicalDTOP:
    """The canonical minimal earliest compatible transducer (Theorem 28).

    Two transducers denote the same translation iff their canonical forms
    are structurally equal — see :func:`equivalent`.
    """
    return canonicalize(_as_dtop(transducer), domain)


def equivalent(
    left: TransducerLike,
    right: TransducerLike,
    domain: Optional[DTTA] = None,
) -> bool:
    """Decide whether two transducers denote the same partial function.

    With ``domain`` given, equality is relative to its language.
    """
    return equivalent_on(_as_dtop(left), _as_dtop(right), domain)


def serialize(obj: Any, indent: int = 2) -> str:
    """Serialize a Tree, DTTA, DTOP, Sample (or wrapper) to stable JSON."""
    if isinstance(obj, (LearnedDTOP, CanonicalDTOP)):
        obj = obj.dtop
    return _serialize.dumps(obj, indent=indent)


def deserialize(text: str) -> Any:
    """Inverse of :func:`serialize`; the format key selects the type."""
    return _serialize.loads(text)


def save(obj: Any, path: str) -> None:
    """Serialize ``obj`` and write it to ``path`` (UTF-8 JSON)."""
    if isinstance(obj, (LearnedDTOP, CanonicalDTOP)):
        obj = obj.dtop
    _serialize.dump(obj, path)


def load(path: str) -> Any:
    """Read and deserialize an artifact written by :func:`save`."""
    return _serialize.load(path)


def learn_json(examples: Iterable[Tuple[Any, Any]], domain: Optional[DTTA] = None):
    """Learn a JSON-to-JSON transformation from example value pairs.

    Examples are plain Python values of the modeled JSON subset
    (``dict`` / ``list`` / ``str`` / numbers / bools / ``None``); the
    result is a :class:`repro.json.pipeline.JsonTransformation`.  See
    :func:`repro.json.pipeline.learn_json_transformation`.
    """
    from repro.json.pipeline import learn_json_transformation

    return learn_json_transformation(examples, domain=domain)


def run_json(transformation, document: Any) -> Any:
    """Apply a JSON transformation to one document (a plain value)."""
    return transformation.apply(document)


def save_json(transformation, path: str) -> None:
    """Persist a JSON transformation as ``repro/json-transformation@1``."""
    from repro.json.pipeline import save_json_transformation

    save_json_transformation(transformation, path)


def load_json(path: str):
    """Load a transformation saved by :func:`save_json`."""
    from repro.json.pipeline import load_json_transformation

    return load_json_transformation(path)


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Global cache counters: interning, the memoized ``⊔``, and the
    sample-table layer (builds vs. incremental extensions, signature
    bucket hits).

    Per-transducer run memos are reported by ``DTOP.cache_stats`` and
    per-sample memos by ``Sample.cache_stats()``.  The ``backends``
    entry breaks batches / hits / misses down by execution backend
    process-wide (``tables`` / ``codegen`` / ``numpy``); the
    ``engine_artifacts`` entry counts from-scratch compilations against
    persistent payload hits/misses/writes — a warm artifact cache shows
    ``compiles == 0`` after a restart.
    """
    return {
        "intern": intern_stats(),
        "lcp": lcp_cache_stats(),
        "sample_tables": sample_tables_stats(),
        "backends": backend_stats(),
        "engine_artifacts": artifact_stats(),
    }


def clear_caches() -> None:
    """Release the global memo caches (the intern table clears itself).

    Only useful to bound memory in long-running processes; correctness
    never depends on calling this.
    """
    clear_lcp_cache()
    reset_intern_stats()
    clear_sample_table_caches()
    clear_learning_memos()
    reset_backend_stats()
    reset_artifact_stats()
