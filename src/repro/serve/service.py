"""The sharded, parallel transformation service.

:class:`TransformService` runs one compiled transducer over arbitrarily
many input trees, optionally across a pool of worker processes:

* inputs are grouped into chunks (``chunk_size`` documents, cut further
  by the DAG-aware :func:`~repro.serve.shard.chunk_forest` when a whole
  forest is mapped at once);
* the compiled engine tables are packed **once**
  (:func:`~repro.serve.shard.pack_engine`) and shipped to every worker
  by the pool initializer — workers never re-compile and never see the
  source machine;
* at most ``max_pending`` chunks are in flight: :meth:`submit` blocks
  once the bound is reached, which is the service's backpressure — a
  slow pool throttles a fast producer instead of buffering the world;
* results come back **in submission order** with per-document outcomes
  exactly matching :meth:`Engine.run_batch_outcomes` — an output tree,
  or the interpreter-identical
  :class:`~repro.errors.UndefinedTransductionError`;
* a worker crash breaks every in-flight chunk; each is retried once on
  a fresh pool, and a chunk that dies twice (it carries the poison
  document) resolves to per-document :class:`~repro.errors.ServiceError`
  outcomes instead of taking the service down;
* :meth:`DTOP.clear_caches <repro.transducers.dtop.DTOP.clear_caches>`
  invalidates the machine's compiled engine; the service notices the
  stale handle at the next dispatch, re-packs the tables, and restarts
  the pool, so a live pool can never serve stale tables.

With ``jobs`` ≤ 1 the service degrades to the in-process engine with
identical semantics (and zero serialization) — the differential tests
pin parallel ≡ serial byte-for-byte.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Union

from repro.engine import engine_for
from repro.errors import ServiceError, UndefinedTransductionError
from repro.obs.trace import Span, TraceContext, span_from_dict
from repro.serve import shard
from repro.trees.tree import Tree
from repro.transducers.dtop import DTOP

#: What one document resolves to.
Outcome = Union[Tree, UndefinedTransductionError, ServiceError]

#: Retries per chunk after a pool break before giving up on it.
MAX_CHUNK_RETRIES = 1

#: Every live service, so abandoned ones (a crashed server, a test that
#: never reached ``close``) still shut their worker pools down at
#: interpreter exit instead of leaking processes.  Weak: a service the
#: caller dropped can be collected normally — its pool's own atexit
#: machinery handles the workers — and ``close()`` deregisters eagerly.
_LIVE_SERVICES: "weakref.WeakSet[TransformService]" = weakref.WeakSet()


@atexit.register
def _close_live_services() -> None:
    """Interpreter-exit safety net: close every service still open."""
    for service in list(_LIVE_SERVICES):
        try:
            service.close()
        except Exception:  # pragma: no cover - last-resort cleanup
            pass


def _pool_context():
    """Fork when the platform has it (cheap, inherits the payload page
    cache); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


class _Chunk:
    """One dispatched chunk: its inputs and eventually its outcomes."""

    __slots__ = ("trees", "future", "executor", "outcomes", "attempts", "trace")

    def __init__(
        self, trees: List[Tree], trace: Optional[TraceContext] = None
    ):
        self.trees = trees
        self.future = None
        self.executor = None  # the pool the future was submitted to
        self.outcomes: Optional[List[Outcome]] = None
        self.attempts = 0
        #: The requesting trace; its id rides the chunk to the worker and
        #: the worker's execute spans are grafted back at resolution.
        self.trace = trace


class TransformService:
    """Submit/iterate/close interface over a sharded transducer pool.

    Use as a context manager, or call :meth:`close` explicitly::

        with TransformService(machine, jobs=4) as service:
            for outcome in service.map(forest):
                ...

    ``jobs``
        worker processes; ``None``/``0``/``1`` run in-process.
    ``chunk_size``
        documents per dispatched chunk on the :meth:`submit` path.
    ``max_pending``
        chunks allowed in flight before :meth:`submit` blocks
        (default ``2 × jobs``).
    ``backend``
        execution backend name for the serial path and every worker
        (``None`` defers to ``REPRO_BACKEND`` / the ``tables`` default);
        resolved at first dispatch and shipped in the worker payload.
    """

    def __init__(
        self,
        transducer: DTOP,
        jobs: Optional[int] = None,
        chunk_size: int = 32,
        max_pending: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if chunk_size < 1:
            raise ServiceError("chunk_size must be at least 1")
        self._transducer = transducer
        self._backend = backend
        self.jobs = max(1, jobs or 1)
        self.chunk_size = chunk_size
        self.max_pending = max_pending if max_pending else 2 * self.jobs
        self._parallel = self.jobs > 1
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Guards executor replacement: dispatches run on the batcher's
        #: executor threads while a supervisor may restart the pool from
        #: the event loop — the swap itself must be atomic.
        self._pool_lock = threading.Lock()
        self._payload: Optional[tuple] = None
        self._source_engine = None
        self._pending_docs: List[Tree] = []
        self._inflight: Deque[_Chunk] = deque()
        #: Sub-queue of ``_inflight``: chunks whose future is unresolved.
        #: Resolution is strictly oldest-first, so this is a suffix.
        self._unresolved: Deque[_Chunk] = deque()
        self._closed = False
        self._stats: Dict[str, int] = {
            "chunks": 0,
            "documents": 0,
            "errors": 0,
            "crashes": 0,
            "pool_restarts": 0,
            "repacks": 0,
        }
        self._shard_stats: Dict[int, Dict[str, int]] = {}
        _LIVE_SERVICES.add(self)

    # -- pool management ------------------------------------------------

    def _ensure_fresh(self) -> None:
        """(Re)pack tables and (re)start the pool when the machine's
        engine handle changed — the ``clear_caches`` invalidation path."""
        engine = engine_for(self._transducer, self._backend)
        if engine is self._source_engine:
            return
        self._source_engine = engine
        if self._parallel:
            self._payload = shard.pack_engine(engine.compiled, engine.backend)
            self._stats["repacks"] += 1
            with self._pool_lock:
                if self._executor is not None:
                    self._executor.shutdown(wait=True)
                    self._executor = None
                    self._stats["pool_restarts"] += 1

    def _pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=_pool_context(),
                    initializer=shard.init_worker,
                    initargs=(self._payload,),
                )
            return self._executor

    def _restart_pool(self) -> None:
        with self._pool_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None
        self._stats["pool_restarts"] += 1

    # -- supervision hooks ----------------------------------------------

    def pool_broken(self) -> bool:
        """Whether the current worker pool has lost a process.

        The executor flags itself broken as soon as its management
        thread sees a worker die — usually before any dispatch
        discovers it — which is what lets a supervisor react to a crash
        between requests.
        """
        executor = self._executor
        return bool(executor is not None and getattr(executor, "_broken", False))

    def warm(self) -> None:
        """Pack tables and start the worker pool now (parallel only).

        Dispatch does all of this lazily; warming moves the fork cost
        off the first request's latency — and off the restart path.
        """
        if self._closed or not self._parallel:
            return
        self._ensure_fresh()
        self._pool()

    def restart(self) -> bool:
        """Supervised restart: discard a broken pool, prestart a fresh one.

        Safe against a concurrent dispatch: only a pool the executor
        itself reports broken is discarded (its in-flight chunks fail
        over through the existing retry path — a break from a replaced
        pool never touches the fresh one), and the replacement is warmed
        before returning.  Returns ``False`` on closed or in-process
        services, ``True`` after a restart.
        """
        if self._closed or not self._parallel:
            return False
        if self.pool_broken():
            self._restart_pool()
        self.warm()
        return True

    # -- dispatch and collection ----------------------------------------

    def _dispatch(
        self, trees: List[Tree], trace: Optional[TraceContext] = None
    ) -> None:
        if not trees:
            return
        self._ensure_fresh()
        chunk = _Chunk(trees, trace if trace else None)
        self._stats["chunks"] += 1
        self._stats["documents"] += len(trees)
        if self._parallel:
            # Backpressure: block until the pool has room for this chunk
            # (resolved-but-unconsumed chunks no longer hold pool slots).
            while len(self._unresolved) >= self.max_pending:
                self._resolve(self._unresolved[0])
            trace_id = chunk.trace.trace_id if chunk.trace else None
            encoded = shard.encode_forest(trees)
            try:
                chunk.future = self._pool().submit(
                    shard.worker_translate, encoded, trace_id
                )
            except BrokenProcessPool:
                # The pool died under an earlier chunk and nothing has
                # collected the break yet; dispatch on a fresh one.
                self._stats["crashes"] += 1
                self._restart_pool()
                chunk.future = self._pool().submit(
                    shard.worker_translate, encoded, trace_id
                )
            chunk.executor = self._executor
            chunk.attempts += 1
            self._unresolved.append(chunk)
        elif chunk.trace:
            with chunk.trace.span(
                "execute",
                backend=self._source_engine.backend,
                documents=len(trees),
                jobs=1,
            ):
                chunk.outcomes = list(
                    self._source_engine.run_batch_outcomes(trees)
                )
        else:
            chunk.outcomes = list(
                self._source_engine.run_batch_outcomes(trees)
            )
        self._inflight.append(chunk)

    def _resolve(self, chunk: _Chunk) -> None:
        """Block until ``chunk`` has outcomes, handling pool breakage."""
        if chunk.outcomes is not None:
            return
        try:
            self._resolve_future(chunk)
        finally:
            if self._unresolved and self._unresolved[0] is chunk:
                self._unresolved.popleft()

    def _resolve_future(self, chunk: _Chunk) -> None:
        while True:
            try:
                result = chunk.future.result()
            except BrokenProcessPool:
                self._stats["crashes"] += 1
                # Only tear down the pool the dead future belonged to; a
                # break from an already-replaced pool must not take the
                # current healthy one (and its in-flight chunks) down.
                if chunk.executor is self._executor:
                    self._restart_pool()
                if chunk.attempts > MAX_CHUNK_RETRIES:
                    error = ServiceError(
                        "worker process crashed while translating this "
                        "document's chunk (retry exhausted)"
                    )
                    chunk.outcomes = [error for _ in chunk.trees]
                    self._stats["errors"] += len(chunk.trees)
                    return
                chunk.future = self._pool().submit(
                    shard.worker_translate,
                    shard.encode_forest(chunk.trees),
                    chunk.trace.trace_id if chunk.trace else None,
                )
                chunk.executor = self._executor
                chunk.attempts += 1
                continue
            # Untraced workers return the historical 3-tuple; traced ones
            # append a trace record (worker-minted trace id + spans).
            pid, records, encoded = result[0], result[1], result[2]
            trace_record = result[3] if len(result) > 3 else None
            chunk.outcomes = shard.decode_outcomes(records, encoded)
            if chunk.trace and trace_record is not None:
                self._graft_worker_trace(chunk, trace_record)
            self._stats["errors"] += sum(
                1 for o in chunk.outcomes if not isinstance(o, Tree)
            )
            per_shard = self._shard_stats.setdefault(
                pid, {"chunks": 0, "documents": 0}
            )
            per_shard["chunks"] += 1
            per_shard["documents"] += len(chunk.outcomes)
            return

    @staticmethod
    def _graft_worker_trace(chunk: _Chunk, trace_record: Dict) -> None:
        """Land the worker-side spans in the requesting trace.

        The grafted ``execute`` span's duration is the worker's own
        measurement of its translate call, and its meta carries the
        trace id the *worker process* minted — the proof that a sharded
        worker, not the parent, ran the sweep.
        """
        worker_root = span_from_dict(trace_record["spans"])
        execute = Span(
            "execute",
            0.0,
            {
                "worker_trace_id": trace_record["trace_id"],
                "pid": trace_record["pid"],
                "documents": len(chunk.trees),
            },
        )
        execute.ended = worker_root.duration_s
        execute.children = worker_root.children
        chunk.trace.attach(execute)

    def _drain_head(self) -> Iterator[Outcome]:
        """Yield the outcomes of the oldest in-flight chunk."""
        chunk = self._inflight.popleft()
        self._resolve(chunk)
        for outcome in chunk.outcomes:
            yield outcome

    # -- public API -----------------------------------------------------

    def submit(self, tree: Tree) -> None:
        """Queue one input; dispatches a chunk every ``chunk_size`` docs.

        Blocks when ``max_pending`` chunks are already in flight.
        """
        if self._closed:
            raise ServiceError("service is closed")
        self._pending_docs.append(tree)
        if len(self._pending_docs) >= self.chunk_size:
            self._dispatch(self._pending_docs)
            self._pending_docs = []

    def results(self) -> Iterator[Outcome]:
        """Yield every outcome submitted so far, in submission order.

        Flushes the partial pending chunk first; blocks as needed.
        """
        if self._pending_docs:
            self._dispatch(self._pending_docs)
            self._pending_docs = []
        while self._inflight:
            yield from self._drain_head()

    def map(
        self,
        trees: Iterable[Tree],
        trace: Optional[TraceContext] = None,
    ) -> Iterator[Outcome]:
        """Translate a forest; outcomes stream back in input order.

        Materializable forests are chunked cost-aware across the pool
        (:func:`~repro.serve.shard.chunk_forest`); dispatch and
        collection overlap, bounded by ``max_pending``.  An optional
        ``trace`` collects one ``execute`` span per chunk (with
        worker-side sub-spans on the parallel path).
        """
        if self._closed:
            raise ServiceError("service is closed")
        if self._pending_docs:
            raise ServiceError(
                "map() cannot interleave with partially submitted chunks"
            )
        if self._inflight:
            raise ServiceError(
                "map() cannot start while earlier outcomes are pending — "
                "drain results() (e.g. from an abandoned map iterator) first"
            )
        forest = list(trees)
        if not self._parallel:
            self._dispatch(forest, trace)
            while self._inflight:
                yield from self._drain_head()
            return
        ranges = shard.chunk_forest(
            forest,
            max(self.jobs, -(-len(forest) // self.chunk_size)),
            max_docs=self.chunk_size,
        )
        for start, end in ranges:
            while len(self._inflight) >= self.max_pending:
                yield from self._drain_head()
            self._dispatch(forest[start:end], trace)
        while self._inflight:
            yield from self._drain_head()

    def run_batch_outcomes(
        self,
        trees: Iterable[Tree],
        trace: Optional[TraceContext] = None,
    ) -> List[Outcome]:
        """Materialized :meth:`map` — the engine-compatible entry point."""
        return list(self.map(trees, trace))

    @property
    def stats(self) -> Dict[str, object]:
        """Aggregate counters plus per-shard (per worker pid) counts."""
        return {
            **self._stats,
            "jobs": self.jobs,
            "shards": {pid: dict(s) for pid, s in self._shard_stats.items()},
        }

    def close(self) -> None:
        """Shut the pool down; pending unconsumed work is discarded.

        Idempotent, safe after a worker crash (a broken pool shuts down
        without raising), and registered as an interpreter-exit cleanup
        — an abandoned service cannot leak worker processes.
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_SERVICES.discard(self)
        self._pending_docs = []
        self._inflight.clear()
        self._unresolved.clear()
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=True)
            except Exception:  # pragma: no cover - defensive: a pool
                pass  # broken mid-shutdown must not fail close()

    def __enter__(self) -> "TransformService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
