"""Streaming XML ingestion: build documents incrementally, flush early.

:mod:`repro.xml.xmlio` parses a fully materialized string recursively —
fine for single documents, wrong for a service fed multi-megabyte
streams of documents.  This module ingests XML through the expat push
parser (the SAX substrate of the standard library):

* **incremental** — input arrives in chunks (a file object, an iterable
  of byte/str fragments, or a path read in blocks); nothing requires the
  whole stream in memory;
* **iterative** — element frames live on an explicit stack, so
  depth-100 000 documents parse without touching the Python recursion
  limit (the recursive reader overflows around depth 900);
* **early flush** — in *forest mode* (:func:`iter_stream_documents`)
  the direct children of the stream's root element are yielded as soon
  as their end tags arrive and are **not** accumulated under the root:
  a million-document batch stream is processed holding one document at
  a time, which is what lets :class:`~repro.serve.service.TransformService`
  keep its bounded queues full without materializing the corpus.

Semantics match :func:`repro.xml.xmlio.parse_xml` on its supported
subset: elements and character data; comments, processing instructions
and the document type declaration are skipped; surrounding whitespace of
character data is stripped and whitespace-only text dropped; attributes
raise :class:`~repro.errors.ParseError` unless ``ignore_attributes``.
Expat additionally accepts CDATA sections (treated as character data) —
a strict superset, covered by the equivalence tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union
from xml.parsers import expat

from repro.errors import ParseError
from repro.xml.unranked import PCDATA_LABEL, UTree

#: Anything the stream readers accept as input.
StreamSource = Union[str, bytes, Path, IO, Iterable]

#: Default read size for file-like and path sources.
DEFAULT_CHUNK_BYTES = 1 << 16


def _iter_chunks(source: StreamSource, chunk_bytes: int) -> Iterator[bytes]:
    """Normalize any accepted source into an iterator of byte chunks."""
    if isinstance(source, bytes):
        yield source
        return
    if isinstance(source, str):
        yield source.encode("utf-8")
        return
    if isinstance(source, Path):
        with source.open("rb") as handle:
            while True:
                block = handle.read(chunk_bytes)
                if not block:
                    return
                yield block
        return
    if hasattr(source, "read"):
        while True:
            block = source.read(chunk_bytes)
            if not block:
                return
            yield block.encode("utf-8") if isinstance(block, str) else block
        return
    for piece in source:
        yield piece.encode("utf-8") if isinstance(piece, str) else piece


class StreamParser:
    """Push parser building :class:`~repro.xml.unranked.UTree` documents.

    Feed byte (or str) fragments with :meth:`feed`, drain completed
    documents with :meth:`ready`, and finish with :meth:`close`.  In
    forest mode every direct child element of the stream's single root
    element is a document (flushed on completion, never retained);
    otherwise the root element itself is the one document.
    """

    def __init__(self, ignore_attributes: bool = False, forest: bool = False):
        self.ignore_attributes = ignore_attributes
        self.forest = forest
        self.root_label: Optional[str] = None
        self._parser = expat.ParserCreate()
        self._parser.buffer_text = True
        self._parser.StartElementHandler = self._start
        self._parser.EndElementHandler = self._end
        self._parser.CharacterDataHandler = self._data
        # Frames: (label, children list, text buffer), explicit stack.
        self._frames: List[tuple] = []
        self._ready: List[UTree] = []
        self._closed = False
        self._documents = 0

    # -- expat handlers -------------------------------------------------

    def _error(self, message: str) -> ParseError:
        return ParseError(
            f"XML stream error at line {self._parser.CurrentLineNumber}, "
            f"column {self._parser.CurrentColumnNumber}: {message}"
        )

    def _flush_text(self) -> None:
        label, children, buffer = self._frames[-1]
        if buffer:
            data = "".join(buffer).strip()
            buffer.clear()
            if data:
                if self.forest and len(self._frames) == 1:
                    raise self._error(
                        f"stray character data {data[:30]!r} between "
                        f"stream documents"
                    )
                children.append(UTree(PCDATA_LABEL, (), data))

    def _start(self, name: str, attributes: dict) -> None:
        if attributes and not self.ignore_attributes:
            raise self._error(
                f"attributes on <{name}> are not part of the tree model "
                f"(pass ignore_attributes=True to drop them)"
            )
        if not self._frames:
            self.root_label = name
        else:
            self._flush_text()
        self._frames.append((name, [], []))

    def _end(self, name: str) -> None:
        self._flush_text()
        label, children, _buffer = self._frames.pop()
        completed = UTree(label, tuple(children))
        if not self._frames:
            if not self.forest:
                self._ready.append(completed)
                self._documents += 1
            return
        if self.forest and len(self._frames) == 1:
            # A top-level document finished: flush it instead of growing
            # the root's child list — the root stays permanently empty.
            self._ready.append(completed)
            self._documents += 1
        else:
            self._frames[-1][1].append(completed)

    def _data(self, data: str) -> None:
        if not self._frames:
            if data.strip():
                raise self._error(
                    f"character data {data.strip()[:30]!r} outside the "
                    f"root element"
                )
            return
        self._frames[-1][2].append(data)

    # -- public API -----------------------------------------------------

    def feed(self, fragment: Union[str, bytes]) -> None:
        """Consume the next fragment of the stream."""
        if self._closed:
            raise ParseError("cannot feed a closed stream parser")
        if isinstance(fragment, str):
            fragment = fragment.encode("utf-8")
        try:
            self._parser.Parse(fragment, False)
        except expat.ExpatError as error:
            raise ParseError(f"XML stream error: {error}") from None

    def ready(self) -> List[UTree]:
        """Documents completed since the last call (drains the buffer)."""
        done = self._ready
        self._ready = []
        return done

    def close(self) -> List[UTree]:
        """Signal end of stream; return the final completed documents."""
        if not self._closed:
            self._closed = True
            try:
                self._parser.Parse(b"", True)
            except expat.ExpatError as error:
                raise ParseError(f"XML stream error: {error}") from None
            if self._frames:  # pragma: no cover - expat reports it first
                raise ParseError(
                    f"unterminated element <{self._frames[-1][0]}>"
                )
        return self.ready()

    @property
    def documents_seen(self) -> int:
        """Number of documents completed so far."""
        return self._documents


def parse_xml_stream(
    source: StreamSource,
    ignore_attributes: bool = False,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> UTree:
    """Parse one XML document from a stream; drop-in for ``parse_xml``.

    >>> parse_xml_stream("<a><b/>hi</a>").size
    3
    """
    parser = StreamParser(ignore_attributes=ignore_attributes)
    for chunk in _iter_chunks(source, chunk_bytes):
        parser.feed(chunk)
    documents = parser.close()
    if not documents:
        raise ParseError("no document found in the stream")
    return documents[0]


def iter_stream_documents(
    source: StreamSource,
    ignore_attributes: bool = False,
    wrapper: Optional[str] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[UTree]:
    """Yield the top-level documents of a batch stream, incrementally.

    The stream is one root element (the *wrapper*, checked against
    ``wrapper`` when given) whose direct children are the documents.
    Each document is yielded as soon as its end tag has been read; the
    wrapper's children are never accumulated, so memory is bounded by
    the largest single document, not the stream.
    """
    parser = StreamParser(ignore_attributes=ignore_attributes, forest=True)
    for chunk in _iter_chunks(source, chunk_bytes):
        parser.feed(chunk)
        for document in parser.ready():
            _check_wrapper(parser, wrapper)
            yield document
    final = parser.close()
    # Validate even when the stream held zero documents: a misnamed or
    # childless wrapper must fail loudly, not look like an empty batch.
    if parser.root_label is None:
        raise ParseError("no document found in the stream")
    _check_wrapper(parser, wrapper)
    for document in final:
        yield document


def _check_wrapper(parser: StreamParser, wrapper: Optional[str]) -> None:
    if wrapper is not None and parser.root_label != wrapper:
        raise ParseError(
            f"stream root is <{parser.root_label}>, expected <{wrapper}>"
        )
