"""Make compiled engines and forests cheap to ship across processes.

The multiprocessing layer of :mod:`repro.serve.service` needs three
things that the in-process engine never did:

* **a picklable engine** — :class:`~repro.engine.compile.CompiledDTOP`
  carries its source :class:`~repro.transducers.dtop.DTOP` (caches,
  alphabets, live engine handle) and :class:`~repro.trees.tree.Tree`
  constants whose default pickling recurses.  :func:`pack_engine`
  strips the tables down to a plain-tuple payload (trees flat-encoded)
  that pickles in one shot, once per worker; :func:`unpack_engine`
  rebuilds a fresh :class:`~repro.engine.execute.Engine` from it.

* **a deep-safe forest codec** — :func:`encode_forest` /
  :func:`decode_forest` serialize trees as a postorder table of
  ``(label, child-index…)`` records with uid-level deduplication.  The
  encoding is iterative (a depth-100 000 tree neither overflows the
  stack nor explodes the payload), preserves the hash-consed sharing
  *across* the whole forest (a subtree shared by two documents is one
  record), and decoding re-interns, so shipped trees land as the same
  objects the parent holds.

* **cost-aware chunking** — :func:`forest_costs` estimates each
  document's *marginal* DAG cost (distinct subtrees not already seen
  earlier in the forest) and :func:`chunk_forest` cuts the forest into
  contiguous, cost-balanced index ranges.  Contiguity keeps overlap
  inside one shard (the engine pays per distinct subtree) and makes
  reassembly positional, so outputs never depend on the shard count.

Worker-side entry points (:func:`init_worker` / :func:`worker_translate`)
hold one module-global engine per process; per-document outcomes are
returned exactly as :meth:`Engine.run_batch_outcomes` produces them —
output trees re-encoded with the same codec, undefined inputs as the
interpreter-identical error message.

The ``REPRO_SERVE_CRASH_LABEL`` environment variable is a test hook:
a worker that decodes a root carrying that label hard-exits, simulating
a worker crash for the service's recovery path.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import DEFAULT_BACKEND, get_backend
from repro.engine.compile import OP_CONST, CompiledDTOP
from repro.engine.execute import Engine
from repro.errors import ServiceError, UndefinedTransductionError
from repro.obs.trace import NULL_TRACE, TraceContext
from repro.trees.tree import Label, Tree

#: Version tag of the engine payload; bump when the layout changes.
#: ``@2`` added the execution backend name and the symbol arity table.
PAYLOAD_FORMAT = "repro/engine-payload@2"

#: One encoded node: ``(label, child_index, …)`` — children point at
#: earlier records of the same table (postorder invariant).
NodeRecord = Tuple
EncodedForest = Tuple[Tuple[NodeRecord, ...], Tuple[int, ...]]

#: Encoded per-document outcome: ``("t", node_index)`` for an output
#: tree, ``("e", message)`` for an undefined transduction.
EncodedOutcome = Tuple[str, Union[int, str]]


# ---------------------------------------------------------------------------
# Forest codec
# ---------------------------------------------------------------------------


def encode_forest(trees: Sequence[Tree]) -> EncodedForest:
    """Flatten a forest into a postorder node table plus root indexes.

    Iterative (safe for depth-100k trees) and deduplicating: every
    distinct subtree — across the *whole* forest — becomes exactly one
    ``(label, child-index…)`` record, so the payload is proportional to
    the forest's DAG size, not its tree size.
    """
    index_of: Dict[int, int] = {}
    records: List[NodeRecord] = []
    roots: List[int] = []
    for root in trees:
        if root.uid not in index_of:
            stack: List[Tuple[Tree, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if node.uid in index_of:
                    continue
                if expanded or not node.children:
                    index_of[node.uid] = len(records)
                    records.append(
                        (node.label,)
                        + tuple(index_of[c.uid] for c in node.children)
                    )
                else:
                    stack.append((node, True))
                    for child in reversed(node.children):
                        if child.uid not in index_of:
                            stack.append((child, False))
        roots.append(index_of[root.uid])
    return tuple(records), tuple(roots)


def decode_forest(encoded: EncodedForest) -> List[Tree]:
    """Rebuild (re-intern) the trees of :func:`encode_forest`.

    Iterative; the postorder invariant guarantees every child record is
    decoded before its parents.  Interning makes the result *the same
    objects* as the originals when both sides share a process.
    """
    records, roots = encoded
    built: List[Tree] = []
    for record in records:
        built.append(Tree(record[0], tuple(built[i] for i in record[1:])))
    return [built[i] for i in roots]


# ---------------------------------------------------------------------------
# Engine payloads
# ---------------------------------------------------------------------------


def pack_engine(
    compiled: CompiledDTOP, backend: str = DEFAULT_BACKEND
) -> tuple:
    """Reduce compiled DTOP tables to a plain picklable payload.

    The payload contains no :class:`Tree`, no source transducer, and no
    caches — ``OP_CONST`` operands are flat-encoded through the forest
    codec (shared ground subtrees stay shared).  It is serialized once
    per worker by the pool initializer.  ``backend`` names the execution
    backend every worker honoring this payload must instantiate.
    """
    const_trees: List[Tree] = []
    for template in list(compiled.rule_templates) + [compiled.axiom_template]:
        for instruction in template:
            if instruction[0] == OP_CONST:
                const_trees.append(instruction[1])
    encoded_consts = encode_forest(const_trees)

    position = 0

    def strip(template) -> Tuple:
        nonlocal position
        out = []
        for instruction in template:
            if instruction[0] == OP_CONST:
                out.append((OP_CONST, position))
                position += 1
            else:
                out.append(instruction)
        return tuple(out)

    rule_templates = tuple(strip(t) for t in compiled.rule_templates)
    axiom_template = strip(compiled.axiom_template)
    return (
        PAYLOAD_FORMAT,
        backend,
        tuple(compiled.state_names),
        tuple(compiled.symbol_names),
        tuple(compiled.symbol_arity),
        tuple(compiled.rule_of),
        tuple(compiled.rule_calls),
        rule_templates,
        compiled.axiom_calls,
        axiom_template,
        encoded_consts,
    )


def unpack_compiled(payload: tuple) -> Tuple[CompiledDTOP, str]:
    """Rebuild the compiled tables of a :func:`pack_engine` payload.

    Returns ``(compiled, backend)`` without instantiating an engine —
    the artifact-cache layer attaches the tables to a live machine and
    picks the engine itself.  ``compiled.source`` is ``None``; callers
    that hold the source transducer may set it.
    """
    if not payload or payload[0] != PAYLOAD_FORMAT:
        raise ServiceError(f"not a {PAYLOAD_FORMAT} payload")
    (
        _format,
        backend,
        state_names,
        symbol_names,
        symbol_arity,
        rule_of,
        rule_calls,
        rule_templates,
        axiom_calls,
        axiom_template,
        encoded_consts,
    ) = payload
    consts = decode_forest(encoded_consts)

    def restore(template) -> Tuple:
        return tuple(
            (OP_CONST, consts[instruction[1]])
            if instruction[0] == OP_CONST
            else instruction
            for instruction in template
        )

    compiled = object.__new__(CompiledDTOP)
    compiled.source = None  # workers never touch the source machine
    compiled.state_names = list(state_names)
    compiled.state_ids = {name: i for i, name in enumerate(state_names)}
    compiled.symbol_names = list(symbol_names)
    compiled.symbol_ids = {name: i for i, name in enumerate(symbol_names)}
    compiled.num_states = len(state_names)
    compiled.num_symbols = len(symbol_names)
    compiled.symbol_arity = list(symbol_arity)
    compiled.rule_of = list(rule_of)
    compiled.rule_calls = list(rule_calls)
    compiled.rule_templates = [restore(t) for t in rule_templates]
    compiled.axiom_calls = axiom_calls
    compiled.axiom_template = restore(axiom_template)
    return compiled, backend


def unpack_engine(payload: tuple) -> Engine:
    """Rebuild a fresh engine from a :func:`pack_engine` payload.

    The payload's backend field decides which execution backend the
    engine is built on (workers honor the parent's choice); the return
    value implements the full engine surface whichever backend wins.
    """
    compiled, backend = unpack_compiled(payload)
    return get_backend(backend)(compiled)


# ---------------------------------------------------------------------------
# Cost estimation and chunking
# ---------------------------------------------------------------------------


def forest_costs(trees: Sequence[Tree]) -> List[int]:
    """Marginal DAG cost per document, scanning the forest in order.

    A document's cost is the number of distinct subtrees it introduces
    that no earlier document already did — exactly the number of new
    ``(state, subtree)`` seeds (up to the state factor) the engine will
    have to evaluate for it.  Every document costs at least 1, so empty
    marginal documents still occupy a slot when balancing.
    """
    seen: set = set()
    costs: List[int] = []
    for tree in trees:
        new = 0
        stack = [tree]
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            new += 1
            stack.extend(node.children)
        costs.append(max(new, 1))
    return costs


def chunk_forest(
    trees: Sequence[Tree],
    num_chunks: int,
    costs: Optional[Sequence[int]] = None,
    max_docs: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Cut ``trees`` into ≥ ``num_chunks`` contiguous ``(start, end)`` ranges.

    Deterministic and order-preserving: chunk boundaries depend only on
    the forest, the chunk count, and ``max_docs``; outputs reassemble
    positionally, and contiguity keeps DAG overlap between neighbouring
    documents inside one shard.  Balancing is greedy on the marginal
    costs of :func:`forest_costs`: a chunk closes once it holds its
    proportional share of the remaining cost.  ``max_docs`` caps the
    documents per chunk (bounding, e.g., the blast radius of a worker
    crash) by evenly splitting any over-long range afterwards.
    """
    ranges = _cost_ranges(trees, num_chunks, costs)
    if max_docs is None or max_docs < 1:
        return ranges
    capped: List[Tuple[int, int]] = []
    for start, end in ranges:
        span = end - start
        if span <= max_docs:
            capped.append((start, end))
            continue
        pieces = -(-span // max_docs)  # ceil
        base, extra = divmod(span, pieces)
        cursor = start
        for piece in range(pieces):
            width = base + (1 if piece < extra else 0)
            capped.append((cursor, cursor + width))
            cursor += width
    return capped


def _cost_ranges(
    trees: Sequence[Tree],
    num_chunks: int,
    costs: Optional[Sequence[int]],
) -> List[Tuple[int, int]]:
    count = len(trees)
    if count == 0:
        return []
    chunks = max(1, min(num_chunks, count))
    if chunks == 1:
        return [(0, count)]
    costs = list(costs) if costs is not None else forest_costs(trees)
    remaining = sum(costs)
    ranges: List[Tuple[int, int]] = []
    start = 0
    accumulated = 0
    for index, cost in enumerate(costs):
        accumulated += cost
        chunks_left = chunks - len(ranges)
        docs_left = count - index - 1
        # Close the chunk when it reached its share of the remaining
        # cost, or when waiting any longer would leave fewer documents
        # than chunks (every chunk must be non-empty, so the last
        # possible close point is docs_left == chunks_left - 1).
        if (
            accumulated >= remaining / chunks_left
            or docs_left <= chunks_left - 1
        ):
            ranges.append((start, index + 1))
            start = index + 1
            remaining -= accumulated
            accumulated = 0
            if len(ranges) == chunks - 1:
                break
    if start < count:
        ranges.append((start, count))
    return ranges


# ---------------------------------------------------------------------------
# Worker-side entry points
# ---------------------------------------------------------------------------

#: Environment hook for the crash-recovery tests: a worker translating a
#: root with this label hard-exits as if it had segfaulted.
CRASH_LABEL_ENV = "REPRO_SERVE_CRASH_LABEL"

#: Cap on a worker engine's persistent ``(state, uid)`` memo.  The memo
#: holds strong references to every distinct subtree a worker has ever
#: translated; a long-lived pool streaming mostly-distinct documents
#: would otherwise grow without bound.  A wholesale clear is always
#: sound (uids are never reused, the memo is a pure cache), so once the
#: cap is crossed after a chunk the worker starts the next chunk cold —
#: bounding memory at the cost of re-deriving cross-chunk overlap.
WORKER_MEMO_LIMIT = 1 << 18

_WORKER_ENGINE: Optional[Engine] = None


def _reset_inherited_signal_plumbing() -> None:
    """Detach this worker from the parent's asyncio signal machinery.

    Fork-start workers inherit the parent's signal dispositions *and*
    its ``signal.set_wakeup_fd`` self-pipe.  If the parent is an asyncio
    server with ``add_signal_handler`` installed, a signal delivered to
    a worker (e.g. the executor's own ``terminate()`` while cleaning up
    a broken pool) would be written into the shared wakeup pipe and
    replayed by the *parent's* event loop as if the parent had been
    signalled — gracefully stopping a healthy server because one of its
    workers was told to die.  Clearing the wakeup fd and restoring
    default dispositions keeps worker-directed signals in the worker.
    """
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        return
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass


def init_worker(payload: tuple) -> None:
    """Pool initializer: unpack the engine tables once per worker."""
    _reset_inherited_signal_plumbing()
    global _WORKER_ENGINE
    _WORKER_ENGINE = unpack_engine(payload)


def worker_translate(
    chunk: EncodedForest, trace_id: Optional[str] = None
) -> Tuple[int, Tuple[NodeRecord, ...], List[EncodedOutcome]]:
    """Translate one encoded chunk inside a worker process.

    Returns ``(worker pid, output node table, per-document outcomes)``
    with outcomes positionally aligned to the chunk's roots.  Output
    trees across the chunk share one node table, so heavily overlapping
    results cost one record per distinct subtree on the wire.

    ``trace_id`` is the parent's trace id riding the chunk payload; when
    set, the return value grows a fourth element — a trace record
    ``{"parent", "trace_id", "pid", "spans"}`` whose ``trace_id`` is
    minted *in this process* (how the parent's execute span proves a
    shard worker really ran) and whose ``spans`` time the worker-side
    decode → execute → encode stages.  Untraced calls keep the
    historical 3-tuple shape.
    """
    if _WORKER_ENGINE is None:  # pragma: no cover - misuse guard
        raise ServiceError("worker used before init_worker")
    if trace_id is None:
        trace = NULL_TRACE
    else:
        trace = TraceContext(name="worker.translate")
    with trace.span("worker.decode_forest"):
        trees = decode_forest(chunk)
    crash_label = os.environ.get(CRASH_LABEL_ENV)
    if crash_label is not None and any(t.label == crash_label for t in trees):
        os._exit(3)
    with trace.span(
        "worker.execute",
        backend=_WORKER_ENGINE.backend,
        documents=len(trees),
    ):
        raw = _WORKER_ENGINE.run_batch_outcomes(trees)
    if _WORKER_ENGINE.memo_size() > WORKER_MEMO_LIMIT:
        _WORKER_ENGINE.clear_cache()
    with trace.span("worker.encode_forest"):
        output_trees = [o for o in raw if isinstance(o, Tree)]
        records, root_indexes = encode_forest(output_trees)
    roots = iter(root_indexes)
    outcomes: List[EncodedOutcome] = []
    for outcome in raw:
        if isinstance(outcome, Tree):
            outcomes.append(("t", next(roots)))
        else:
            outcomes.append(("e", str(outcome)))
    if trace_id is None:
        return os.getpid(), records, outcomes
    trace_record = {
        "parent": trace_id,
        "trace_id": trace.trace_id,
        "pid": os.getpid(),
        "spans": trace.to_dict(),
    }
    return os.getpid(), records, outcomes, trace_record


def decode_outcomes(
    records: Tuple[NodeRecord, ...], outcomes: Sequence[EncodedOutcome]
) -> List[Union[Tree, UndefinedTransductionError]]:
    """Parent-side inverse of :func:`worker_translate`'s outcome encoding."""
    built: List[Tree] = []
    for record in records:
        built.append(Tree(record[0], tuple(built[i] for i in record[1:])))
    decoded: List[Union[Tree, UndefinedTransductionError]] = []
    for kind, value in outcomes:
        if kind == "t":
            decoded.append(built[value])
        else:
            decoded.append(UndefinedTransductionError(value))
    return decoded
