"""Sharded parallel serving of compiled transformations.

The serving layer scales the compiled engine of :mod:`repro.engine`
from "one process, one materialized forest" to "a pool of worker
processes fed by a stream":

:mod:`repro.serve.shard`
    picklable engine payloads (tables packed once per worker), an
    iterative sharing-preserving forest codec, and DAG-aware
    cost-balanced chunking.

:mod:`repro.serve.stream`
    expat-based streaming XML ingestion — documents are built
    incrementally and flushed to the service as their end tags arrive,
    without materializing the stream; depth-100k documents are fine.

:mod:`repro.serve.service`
    :class:`~repro.serve.service.TransformService` — submit/map/close,
    bounded in-flight chunks (backpressure), worker-crash recovery with
    per-document :class:`~repro.errors.ServiceError` outcomes, and
    per-shard statistics.  Parallel and serial paths are byte-identical
    (pinned by ``tests/fuzz`` and ``tests/serve``).

Entry points for users: ``api.run_batch(..., parallel=N)``,
``XMLTransformation.apply_batch(..., jobs=N)`` /
``apply_stream(...)``, and the CLI ``serve`` / ``apply --jobs N
[--stream]`` modes.
"""

from repro.serve.service import TransformService
from repro.serve.shard import (
    chunk_forest,
    decode_forest,
    encode_forest,
    forest_costs,
    pack_engine,
    unpack_engine,
)
from repro.serve.stream import (
    StreamParser,
    iter_stream_documents,
    parse_xml_stream,
)

__all__ = [
    "TransformService",
    "encode_forest",
    "decode_forest",
    "forest_costs",
    "chunk_forest",
    "pack_engine",
    "unpack_engine",
    "StreamParser",
    "parse_xml_stream",
    "iter_stream_documents",
]
