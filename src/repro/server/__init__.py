"""The network transformation server.

This package turns the sharded serving stack of :mod:`repro.serve`
into an actual multi-tenant network service:

:mod:`repro.server.registry`
    named, versioned models loaded from a directory of JSON artifacts
    (raw transducers and XML transformation bundles), with hot reload
    through the library-wide ``clear_caches`` invalidation contract and
    deferred teardown while requests are in flight.

:mod:`repro.server.batcher`
    latency-bounded micro-batching — concurrent single-document
    requests coalesce into hash-consed forests under ``max_batch`` /
    ``max_wait_ms`` and dispatch to the compiled engine or a sharded
    :class:`~repro.serve.service.TransformService`, with per-request
    outcomes and a bounded admission queue.

:mod:`repro.server.app`
    the asyncio JSON-lines protocol (``transform``,
    ``transform_stream``, ``health``, ``stats``, ``models``,
    ``reload``, ``shutdown``), :func:`~repro.server.app.serve_forever`
    for the CLI, and :class:`~repro.server.app.ServerThread` for
    in-process fixtures.

:mod:`repro.server.client`
    a small blocking client with byte-identical error round-tripping.

:mod:`repro.server.metrics`
    the lock-cheap in-process metrics registry — per-model counters,
    gauges, and streaming latency histograms with quantile estimation —
    served by the ``metrics`` protocol verb both as a structured
    snapshot and as Prometheus text exposition.

:mod:`repro.server.supervisor`
    the periodic shard supervisor: crash detection from service stats,
    restart with exponential backoff, quarantine of flapping shards
    (degrading them to in-process serving), all observable through
    metrics and the structured event log.

:mod:`repro.server.logging`
    one-line JSON structured events (``--log-json``) for startup,
    reloads, shard lifecycle, and shutdown.

Entry points for users: ``api.serve_forever(models_dir, ...)``,
``api.connect(host, port)``, and the CLI ``repro server`` /
``repro apply --remote HOST:PORT``.
"""

from repro.server.app import ServerThread, TransformServer, serve_forever
from repro.server.batcher import MicroBatcher
from repro.server.client import ServerClient
from repro.server.logging import EventLog
from repro.server.metrics import Histogram, ServerMetrics, validate_exposition
from repro.server.registry import ModelEntry, ModelRegistry
from repro.server.supervisor import ShardSupervisor

__all__ = [
    "ModelEntry",
    "ModelRegistry",
    "MicroBatcher",
    "TransformServer",
    "ServerThread",
    "serve_forever",
    "ServerClient",
    "ServerMetrics",
    "Histogram",
    "validate_exposition",
    "EventLog",
    "ShardSupervisor",
]
