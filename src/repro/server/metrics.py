"""Server metrics: lock-cheap counters and streaming latency histograms.

The server's operability story rests on three primitives, all
zero-dependency and cheap enough to sit on every request path:

:class:`Histogram`
    a streaming histogram over geometrically spaced buckets
    (``GROWTH`` = 1.25 per step, ~10 µs to ~100 s).  ``record`` is O(1)
    (one bisect, three integer adds); ``quantile`` interpolates inside
    the bucket holding the requested order statistic, so p50/p95/p99
    estimates carry a bounded *relative* error of one bucket width —
    within ±25 % of the exact sample quantile, pinned against numpy by
    the property tests.  Sum/count/min/max are exact.

:class:`ServerMetrics`
    a named registry of counter / gauge / histogram families with
    ``{label="value"}`` dimensions (``model=``, ``outcome=``, …).  One
    plain ``threading.Lock`` guards every update — critical sections
    are a few dict operations, never per-node work, so 16 concurrent
    clients hammering one counter lose no increments (pinned by the
    concurrency tests) without any per-family lock zoo.

Prometheus exposition
    :meth:`ServerMetrics.render_prometheus` emits the standard text
    format (``# HELP`` / ``# TYPE``, cumulative ``_bucket{le=}`` /
    ``_sum`` / ``_count`` series); :func:`validate_exposition` is the
    shared format checker the test suite and the CI smoke job both run
    against a live server's ``metrics`` response.

The metric taxonomy the server emits (see ``docs/ARCHITECTURE.md``):

========================================  =========  =======================
family                                    type       labels
========================================  =========  =======================
``repro_requests_total``                  counter    ``model``, ``outcome``
``repro_backend_requests_total``          counter    ``model``, ``backend``
``repro_connections_total``               counter    —
``repro_bad_requests_total``              counter    —
``repro_overloads_total``                 counter    ``model``
``repro_request_seconds``                 histogram  ``model``
``repro_queue_wait_seconds``              histogram  ``model``
``repro_batch_assembly_seconds``          histogram  ``model``
``repro_dispatch_seconds``                histogram  ``model``
``repro_batch_documents``                 histogram  ``model``
``repro_worker_crashes_total``            counter    ``model``
``repro_shard_restarts_total``            counter    ``model``
``repro_quarantines_total``               counter    ``model``
``repro_reload_total``                    counter    ``outcome``
``repro_shard_state``                     gauge      ``model``
``repro_traces_total``                    counter    ``mode``
``repro_trace_overhead_seconds``          histogram  —
========================================  =========  =======================

``outcome`` on requests is ``ok`` / ``error`` / ``overload``; overload
rejections never enter the queue-wait histogram (they are refused at
admission and wait in no queue — the overload regression tests pin the
exclusion).  ``repro_reload_total`` outcomes mirror the registry's
reload summary: ``loaded`` / ``reloaded`` / ``kept`` / ``dropped`` /
``failed``.  ``repro_shard_state`` is 0 healthy, 1 backoff, 2
quarantined (the supervisor's state machine).  ``mode`` on traces is
``requested`` (client asked via ``"trace": true``) / ``sampled``
(``--trace-sample-rate`` picked it) / ``watch`` (``--slow-ms`` traces
everything); the overhead histogram records the post-response cost of
serializing and logging each trace.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Histogram",
    "ServerMetrics",
    "validate_exposition",
    "DEFAULT_BOUNDS",
    "GROWTH",
]

#: Geometric growth factor between adjacent bucket bounds.  Bounds one
#: step apart differ by 25 %, which bounds the relative error of every
#: interpolated quantile estimate.
GROWTH = 1.25

#: Lowest finite bucket bound, in the histogram's own unit (seconds for
#: the latency families): 10 µs.  Everything below lands in the first
#: bucket and interpolates from the observed minimum.
_LOWEST = 1e-5

#: Highest finite bound just above 100 s; beyond is the +Inf bucket.
_BUCKETS = int(math.ceil(math.log(100.0 / _LOWEST) / math.log(GROWTH))) + 1


def _default_bounds() -> Tuple[float, ...]:
    return tuple(_LOWEST * GROWTH ** i for i in range(_BUCKETS))


#: The shared bucket layout of every latency histogram.
DEFAULT_BOUNDS: Tuple[float, ...] = _default_bounds()


class Histogram:
    """A streaming histogram with interpolated quantile estimation.

    Not thread-safe by itself — :class:`ServerMetrics` brackets every
    update with its one registry lock.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BOUNDS):
        self.bounds = bounds
        # counts[i] observes values <= bounds[i]; the final slot is +Inf.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) of everything recorded.

        Uses the fractional order statistic ``q * (count - 1)`` (the
        same definition as numpy's default interpolation) and places it
        by linear interpolation inside its bucket, clamped to the
        observed min/max.  The edges are pinned exactly: an empty
        histogram answers ``0.0``, a single observation answers itself
        for every ``q``, ``q <= 0`` answers the observed minimum and
        ``q >= 1`` the observed maximum.  A NaN ``q`` is rejected — it
        compares false with everything and would silently fall through
        to the maximum.
        """
        if q != q:
            raise ValueError("quantile q must not be NaN")
        if self.count == 0:
            return 0.0
        if q <= 0.0 or self.count == 1:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * (self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if rank < cumulative + bucket_count:
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.max
                )
                lo = max(lo, self.min)
                hi = max(lo, min(hi, self.max))
                position = (rank - cumulative + 0.5) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, position))
            cumulative += bucket_count
        return self.max  # pragma: no cover - counts always sum to count

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


#: ``family name -> (type, help text)``; families outside the table are
#: accepted with a generic help line (tests register ad-hoc ones).
FAMILIES: Dict[str, Tuple[str, str]] = {
    "repro_requests_total": (
        "counter",
        "Transform requests answered, by model and outcome "
        "(ok/error/overload)",
    ),
    "repro_backend_requests_total": (
        "counter",
        "Transform requests answered, by model and execution backend "
        "(tables/codegen/numpy)",
    ),
    "repro_connections_total": ("counter", "TCP connections accepted"),
    "repro_bad_requests_total": (
        "counter",
        "Malformed or unframable protocol requests",
    ),
    "repro_overloads_total": (
        "counter",
        "Requests refused at admission because max_pending was reached",
    ),
    "repro_request_seconds": (
        "histogram",
        "End-to-end request latency (admission to response ready)",
    ),
    "repro_queue_wait_seconds": (
        "histogram",
        "Admission-to-dispatch wait inside the micro-batcher "
        "(admitted requests only; overload rejections are excluded)",
    ),
    "repro_batch_assembly_seconds": (
        "histogram",
        "First-admission-to-batch-close assembly time per dispatched batch",
    ),
    "repro_dispatch_seconds": (
        "histogram",
        "Engine/service execution time per dispatched batch",
    ),
    "repro_batch_documents": (
        "histogram",
        "Documents per dispatched micro-batch",
    ),
    "repro_worker_crashes_total": (
        "counter",
        "Worker-process crashes observed per model shard",
    ),
    "repro_shard_restarts_total": (
        "counter",
        "Supervisor-driven worker-pool restarts per model shard",
    ),
    "repro_quarantines_total": (
        "counter",
        "Shards quarantined by the supervisor for flapping",
    ),
    "repro_reload_total": (
        "counter",
        "Registry reload outcomes per model "
        "(loaded/reloaded/kept/dropped/failed)",
    ),
    "repro_shard_state": (
        "gauge",
        "Supervisor state per model shard (0 healthy, 1 backoff, "
        "2 quarantined)",
    ),
    "repro_traces_total": (
        "counter",
        "Transform requests traced, by mode (requested/sampled/watch)",
    ),
    "repro_trace_overhead_seconds": (
        "histogram",
        "Post-response cost of serializing and logging one trace",
    ),
}

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelSet, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value or value in (math.inf, -math.inf):  # pragma: no cover
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class ServerMetrics:
    """The server's metric registry: counters, gauges, histograms.

    All updates go through one short-critical-section lock, so the
    registry is safe to drive from the event loop, the batcher's
    executor threads, and the supervisor at once.  ``clock`` is
    injectable for deterministic tests (the fault toolkit's manual
    clock); it is only used for the uptime stamp in snapshots.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self._started_at = clock()
        self._counters: Dict[str, Dict[LabelSet, float]] = {}
        self._gauges: Dict[str, Dict[LabelSet, float]] = {}
        self._histograms: Dict[str, Dict[LabelSet, Histogram]] = {}

    # -- updates --------------------------------------------------------

    def inc(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        by: float = 1,
    ) -> None:
        key = _labelset(labels)
        with self._lock:
            family = self._counters.setdefault(name, {})
            family[key] = family.get(key, 0) + by

    def set_gauge(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        value: float = 0,
    ) -> None:
        with self._lock:
            self._gauges.setdefault(name, {})[_labelset(labels)] = value

    def observe(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        value: float = 0.0,
    ) -> None:
        key = _labelset(labels)
        with self._lock:
            family = self._histograms.setdefault(name, {})
            histogram = family.get(key)
            if histogram is None:
                histogram = family[key] = Histogram()
            histogram.record(value)

    # -- reads ----------------------------------------------------------

    def counter_value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> float:
        """One counter series' current value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(_labelset(labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across every label combination."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def histogram(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Histogram]:
        """The live histogram of one series, or ``None``; treat read-only."""
        with self._lock:
            return self._histograms.get(name, {}).get(_labelset(labels))

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able snapshot: counters, gauges, histogram summaries."""
        with self._lock:
            counters = {
                name: [
                    {"labels": dict(labels), "value": value}
                    for labels, value in sorted(series.items())
                ]
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: [
                    {"labels": dict(labels), "value": value}
                    for labels, value in sorted(series.items())
                ]
                for name, series in sorted(self._gauges.items())
            }
            histograms = {
                name: [
                    {"labels": dict(labels), **histogram.summary()}
                    for labels, histogram in sorted(series.items())
                ]
                for name, series in sorted(self._histograms.items())
            }
            return {
                "uptime_s": self._clock() - self._started_at,
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
            }

    # -- exposition -----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every family."""
        lines: List[str] = []
        with self._lock:
            plain = [
                ("counter", name, series)
                for name, series in sorted(self._counters.items())
            ] + [
                ("gauge", name, series)
                for name, series in sorted(self._gauges.items())
            ]
            for kind, name, series in plain:
                declared, help_text = FAMILIES.get(
                    name, (kind, f"{name} ({kind})")
                )
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {declared}")
                for labels, value in sorted(series.items()):
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(value)}"
                    )
            for name, series in sorted(self._histograms.items()):
                _, help_text = FAMILIES.get(
                    name, ("histogram", f"{name} (histogram)")
                )
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} histogram")
                for labels, histogram in sorted(series.items()):
                    cumulative = 0
                    for bound, bucket_count in zip(
                        histogram.bounds, histogram.counts
                    ):
                        cumulative += bucket_count
                        le = ("le", format(bound, ".9g"))
                        lines.append(
                            f"{name}_bucket{_render_labels(labels, (le,))} "
                            f"{cumulative}"
                        )
                    cumulative += histogram.counts[-1]
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, (('le', '+Inf'),))} "
                        f"{cumulative}"
                    )
                    rendered = _render_labels(labels)
                    lines.append(
                        f"{name}_sum{rendered} {repr(histogram.sum)}"
                    )
                    lines.append(f"{name}_count{rendered} {histogram.count}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Exposition validation (shared by the test suite and the CI smoke job)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")"
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def validate_exposition(text: str) -> Dict[str, Dict[LabelSet, float]]:
    """Check Prometheus text-format well-formedness; raise ``ValueError``.

    Beyond per-line syntax it checks the semantic rules a scraper
    relies on: every sample's family carries a ``# TYPE`` declaration
    above it, histogram buckets are cumulative (non-decreasing in
    ``le`` order), the ``+Inf`` bucket equals ``_count``, and every
    histogram has ``_sum`` and ``_count`` series.  Returns the parsed
    samples keyed by metric name then label set.
    """
    samples: Dict[str, Dict[LabelSet, float]] = {}
    types: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {number}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary"):
                    raise ValueError(
                        f"line {number}: unknown metric type {parts[3]!r}"
                    )
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample {line!r}")
        name = match.group("name")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {number}: non-numeric value {raw_value!r}"
            ) from None
        labels: LabelSet = ()
        if match.group("labels"):
            labels = tuple(
                (key, raw) for key, raw in _LABEL_RE.findall(
                    match.group("labels")
                )
            )
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            raise ValueError(
                f"line {number}: sample {name!r} has no # TYPE declaration"
            )
        samples.setdefault(name, {})[labels] = value

    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{family}_bucket", {})
        counts = samples.get(f"{family}_count", {})
        sums = samples.get(f"{family}_sum", {})
        if buckets and (not counts or not sums):
            raise ValueError(f"histogram {family} is missing _sum or _count")
        series: Dict[LabelSet, List[Tuple[str, float]]] = {}
        for labels, value in buckets.items():
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(
                    f"histogram {family} bucket without an le label"
                )
            rest = tuple(pair for pair in labels if pair[0] != "le")
            series.setdefault(rest, []).append((le, value))
        for rest, entries in series.items():
            def _le_key(entry: Tuple[str, float]) -> float:
                return math.inf if entry[0] == "+Inf" else float(entry[0])

            entries.sort(key=_le_key)
            if entries[-1][0] != "+Inf":
                raise ValueError(f"histogram {family} lacks a +Inf bucket")
            previous = -math.inf
            for _, value in entries:
                if value < previous:
                    raise ValueError(
                        f"histogram {family} buckets are not cumulative"
                    )
                previous = value
            count = counts.get(rest)
            if count is None or count != entries[-1][1]:
                raise ValueError(
                    f"histogram {family}: +Inf bucket != _count"
                )
    return samples
