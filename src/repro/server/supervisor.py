"""The shard supervisor: expected-state reconciliation for worker pools.

PR 4's :class:`~repro.serve.service.TransformService` already survives a
worker crash — each in-flight chunk is retried once on a fresh pool and
a twice-dead chunk resolves to per-document ``ServiceError`` — but that
is *reactive* healing with no memory: every crash pays a cold pool on
the request path, nothing counts, and a model whose artifact keeps
killing workers will happily fork pools forever.

:class:`ShardSupervisor` is the periodic monitor on top.  Every
``interval`` seconds it reconciles each sharded model entry against its
expected state:

* **crash detection** — per-entry crash counters from the service's
  stats (plus the executor's own broken flag, so a worker killed while
  the pool is *idle* is noticed before any request pays for it) feed
  ``repro_worker_crashes_total`` and a ``shard.crash`` log event;
* **restart with exponential backoff** — a crashed shard is restarted
  (pool discarded, fresh one prestarted off the request path) after
  ``backoff_base × 2^(attempts-1)`` seconds, capped at ``backoff_cap``;
  consecutive crashes push the delay out, a quiet ``flap_window``
  resets it;
* **quarantine** — ``flap_threshold`` crashes inside ``flap_window``
  quarantine the shard: its pool is torn down and the entry degrades to
  the in-process engine (capacity shrinks, serving continues, ``health``
  reports ``"degraded"``).  After ``quarantine_seconds`` of probation
  the supervisor restores the shard with a fresh pool.

The state machine per shard::

        ┌─────────┐ crash seen  ┌─────────┐ backoff elapsed
        │ healthy │────────────▶│ backoff │──────────────▶ restart
        └─────────┘             └─────────┘                (→ healthy)
             ▲                       │
             │ probation over        │ ≥ flap_threshold crashes
             │ (fresh pool)          ▼ in flap_window
             │               ┌─────────────┐
             └───────────────│ quarantined │  (in-process serving)
                             └─────────────┘

Everything the supervisor does is observable: counters and the
``repro_shard_state`` gauge (0 healthy / 1 backoff / 2 quarantined) in
:class:`~repro.server.metrics.ServerMetrics`, and structured events
(``shard.crash`` / ``shard.backoff`` / ``shard.restart`` /
``shard.quarantine`` / ``shard.restore``) through the
:class:`~repro.server.logging.EventLog`.

The ``clock`` is injectable and :meth:`tick` is a plain synchronous
method, so the fault-injection tests drive the whole state machine
deterministically with a manual clock; the server runs :meth:`run` as a
background asyncio task.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional

from repro.server.logging import EventLog
from repro.server.metrics import ServerMetrics

__all__ = ["ShardSupervisor", "HEALTHY", "BACKOFF", "QUARANTINED"]

HEALTHY = "healthy"
BACKOFF = "backoff"
QUARANTINED = "quarantined"

_STATE_GAUGE = {HEALTHY: 0, BACKOFF: 1, QUARANTINED: 2}


class _ShardState:
    """Supervisor bookkeeping for one sharded model entry."""

    __slots__ = (
        "state",
        "service",
        "last_crashes",
        "crashes_seen",
        "attempts",
        "restarts",
        "crash_times",
        "next_restart_at",
        "quarantined_at",
    )

    def __init__(self) -> None:
        self.state = HEALTHY
        self.service = None  # the service object the baseline belongs to
        self.last_crashes = 0
        self.crashes_seen = 0
        self.attempts = 0
        self.restarts = 0
        self.crash_times: List[float] = []
        self.next_restart_at = 0.0
        self.quarantined_at = 0.0


class ShardSupervisor:
    """Monitor, restart, and quarantine the registry's sharded entries."""

    def __init__(
        self,
        registry,
        metrics: ServerMetrics,
        events: Optional[EventLog] = None,
        interval: float = 1.0,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        flap_threshold: int = 3,
        flap_window: float = 30.0,
        quarantine_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.metrics = metrics
        self.events = events or EventLog(enabled=False)
        self.interval = interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.flap_threshold = max(1, flap_threshold)
        self.flap_window = flap_window
        self.quarantine_seconds = quarantine_seconds
        self._clock = clock
        self._states: Dict[str, _ShardState] = {}
        self._ticks = 0

    # -- introspection --------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether any shard is currently serving in quarantine."""
        return any(
            state.state == QUARANTINED for state in self._states.values()
        )

    def describe(self) -> Dict[str, Dict[str, object]]:
        return {
            key: {
                "state": state.state,
                "crashes": state.crashes_seen,
                "restarts": state.restarts,
                "attempts": state.attempts,
            }
            for key, state in sorted(self._states.items())
        }

    @property
    def stats(self) -> Dict[str, object]:
        return {"ticks": self._ticks, "shards": self.describe()}

    # -- the reconciliation pass ----------------------------------------

    def tick(self) -> None:
        """One reconciliation pass over every sharded entry."""
        self._ticks += 1
        now = self._clock()
        live_keys = set()
        for entry in self.registry.entries():
            if entry.jobs <= 1:
                continue
            live_keys.add(entry.key)
            state = self._states.get(entry.key)
            if state is None:
                state = self._states[entry.key] = _ShardState()
                self.metrics.set_gauge(
                    "repro_shard_state", {"model": entry.key}, 0
                )
            self._reconcile(entry, state, now)
        for key in list(self._states):
            if key not in live_keys:  # dropped by a reload
                del self._states[key]

    def _reconcile(self, entry, state: _ShardState, now: float) -> None:
        service = entry.peek_service()
        if service is not state.service:
            # A fresh service (first dispatch, restart, restore) starts
            # its crash counter at zero; rebase without losing history.
            state.service = service
            state.last_crashes = 0
        crashes = (
            service.stats["crashes"] if service is not None else 0
        )
        delta = crashes - state.last_crashes
        state.last_crashes = crashes
        if (
            delta == 0
            and state.state == HEALTHY
            and service is not None
            and service.pool_broken()
        ):
            # A worker died while the pool sat idle: no dispatch has
            # discovered it yet, so the stats counter has not moved.
            delta = 1
        if delta > 0:
            self._on_crashes(entry, state, delta, now)
        if state.state == BACKOFF and now >= state.next_restart_at:
            self._restart(entry, state, now)
        elif (
            state.state == QUARANTINED
            and now - state.quarantined_at >= self.quarantine_seconds
        ):
            self._restore(entry, state, now)
        elif state.state == HEALTHY and state.attempts:
            self._prune(state, now)
            if not state.crash_times:
                state.attempts = 0  # a quiet window resets the backoff

    def _rebase(self, state: _ShardState, entry) -> None:
        """Re-anchor crash accounting on the entry's current service.

        A restart may *reuse* the service object (its cumulative crash
        counter survives the pool swap), so the baseline must be the
        counter's current value — rebasing to zero would re-count every
        historical crash as a fresh one on the next tick.
        """
        state.service = entry.peek_service()
        state.last_crashes = (
            state.service.stats["crashes"]
            if state.service is not None
            else 0
        )

    def _prune(self, state: _ShardState, now: float) -> None:
        state.crash_times = [
            stamp
            for stamp in state.crash_times
            if now - stamp < self.flap_window
        ]

    def _on_crashes(
        self, entry, state: _ShardState, delta: int, now: float
    ) -> None:
        state.crashes_seen += delta
        self.metrics.inc(
            "repro_worker_crashes_total", {"model": entry.key}, by=delta
        )
        self.events.emit(
            "shard.crash",
            model=entry.key,
            crashes=delta,
            total=state.crashes_seen,
        )
        state.crash_times.extend([now] * delta)
        self._prune(state, now)
        if state.state == QUARANTINED:
            return  # already isolated; probation keeps running
        if len(state.crash_times) >= self.flap_threshold:
            self._quarantine(entry, state, now)
            return
        state.attempts += 1
        delay = min(
            self.backoff_cap, self.backoff_base * 2 ** (state.attempts - 1)
        )
        state.next_restart_at = now + delay
        state.state = BACKOFF
        self.metrics.set_gauge(
            "repro_shard_state", {"model": entry.key}, _STATE_GAUGE[BACKOFF]
        )
        self.events.emit(
            "shard.backoff",
            model=entry.key,
            attempts=state.attempts,
            delay_s=delay,
        )

    def _restart(self, entry, state: _ShardState, now: float) -> None:
        restarted = entry.restart_service()
        self._rebase(state, entry)
        state.state = HEALTHY
        state.restarts += 1
        self.metrics.inc("repro_shard_restarts_total", {"model": entry.key})
        self.metrics.set_gauge(
            "repro_shard_state", {"model": entry.key}, _STATE_GAUGE[HEALTHY]
        )
        self.events.emit(
            "shard.restart",
            model=entry.key,
            attempts=state.attempts,
            restarted=restarted,
        )

    def _quarantine(self, entry, state: _ShardState, now: float) -> None:
        entry.set_quarantined(True)
        state.service = None
        state.last_crashes = 0
        state.state = QUARANTINED
        state.quarantined_at = now
        self.metrics.inc("repro_quarantines_total", {"model": entry.key})
        self.metrics.set_gauge(
            "repro_shard_state",
            {"model": entry.key},
            _STATE_GAUGE[QUARANTINED],
        )
        self.events.emit(
            "shard.quarantine",
            model=entry.key,
            crashes=state.crashes_seen,
            probation_s=self.quarantine_seconds,
        )

    def _restore(self, entry, state: _ShardState, now: float) -> None:
        entry.set_quarantined(False)
        entry.restart_service()
        self._rebase(state, entry)
        state.state = HEALTHY
        state.restarts += 1
        state.attempts = 0
        state.crash_times = []
        self.metrics.inc("repro_shard_restarts_total", {"model": entry.key})
        self.metrics.set_gauge(
            "repro_shard_state", {"model": entry.key}, _STATE_GAUGE[HEALTHY]
        )
        self.events.emit("shard.restore", model=entry.key)

    # -- the background loop --------------------------------------------

    async def run(self) -> None:
        """Tick forever (until cancelled); a failing tick never exits."""
        while True:
            try:
                self.tick()
            except Exception as error:  # pragma: no cover - defensive
                self.events.emit(
                    "supervisor.error",
                    error=f"{type(error).__name__}: {error}",
                )
            await asyncio.sleep(self.interval)
