"""Structured JSON event logging for the transformation server.

One :class:`EventLog` per server; every operational event — startup,
shutdown, registry reloads (with per-model outcomes), shard crashes,
supervised restarts, quarantines — is one JSON object on one line:

    {"event": "shard.restart", "model": "audit@1", "attempts": 2,
     "ts": 1723111042.113512}

Lines go to the configured stream (stderr for ``repro server
--log-json``) so they interleave cleanly with the banner; nothing is
ever written to stdout.  A disabled log with no sinks short-circuits to
a no-op, so the hooks cost nothing when the operator did not opt in.
Tests attach list sinks via :meth:`EventLog.add_sink` and assert on the
decoded records instead of scraping text.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, TextIO

__all__ = ["EventLog"]


class EventLog:
    """Emit structured one-line JSON events to a stream and/or sinks."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        clock: Callable[[], float] = time.time,
    ):
        self._stream = stream
        self._enabled = enabled
        self._clock = clock
        self._sinks: List[Callable[[Dict], None]] = []

    @property
    def enabled(self) -> bool:
        return self._enabled and (
            self._stream is not None or bool(self._sinks)
        )

    def add_sink(self, sink: Callable[[Dict], None]) -> "EventLog":
        """Register a callable receiving every event record (tests)."""
        self._sinks.append(sink)
        return self

    def emit(self, event: str, **fields: object) -> None:
        """Record one event; a disabled, sink-less log is a no-op."""
        if not self._enabled or (self._stream is None and not self._sinks):
            return
        record: Dict[str, object] = {"event": event, **fields}
        record["ts"] = round(self._clock(), 6)
        for sink in self._sinks:
            sink(dict(record))
        if self._stream is not None:
            line = json.dumps(
                record, sort_keys=True, ensure_ascii=False, default=str
            )
            self._stream.write(line + "\n")
            self._stream.flush()
