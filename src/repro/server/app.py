"""The asyncio network front-end: JSON-lines transforms over TCP.

Protocol — one JSON object per ``\\n``-terminated line, UTF-8:

``{"op": "transform", "model": "flip@1", "document": "...", "id": 7}``
    Transform one document (term syntax for transducer models, XML for
    transformation bundles).  Response:
    ``{"id": 7, "ok": true, "model": "flip@1", "document": "..."}`` or
    ``{"id": 7, "ok": false, "error": {"type": "...", "message": "..."}}``.
    Error types are the library's exception class names — a client can
    rebuild the exact exception, and messages are byte-identical to the
    local ``api.run`` path (pinned by the differential fuzz tests).
    ``"format": "packed"`` (transducer models only) answers with flat
    DAG records instead of rendered term text: payload ∝ *distinct*
    subtrees, encoding iterative — heavily shared or arbitrarily deep
    outputs ship cheaply where the recursive renderer cannot.

``{"op": "transform_stream", "model": "m", "content_length": N}``
    Followed by exactly ``N`` raw bytes: an XML stream whose root
    element wraps the documents (see :mod:`repro.serve.stream`).
    Documents are parsed incrementally, fed to the micro-batcher as
    their end tags arrive, and answered in order — one
    ``{"seq": i, "ok": ..., ...}`` line each — before a final
    ``{"done": true, "count": n, "failures": m}`` line.  The model
    entry is pinned for the whole stream: a hot reload mid-stream
    affects new requests, never the documents of an open stream.

``health`` / ``stats`` / ``models`` / ``metrics`` / ``profile`` /
``reload`` / ``shutdown``
    Admin plane: liveness (``status`` is ``"serving"``, or
    ``"degraded"`` while the supervisor has a shard in quarantine),
    the registry + batcher + per-model service counters, the model
    list, the metrics snapshot (per-model counters and latency
    quantiles as JSON, engine artifact-cache and per-backend counters
    folded in, plus the Prometheus text exposition under ``"text"``),
    the per-model engine profiler snapshot (hot rules, per-height
    sweep timings), a registry rescan, and graceful stop.

Tracing: ``"trace": true`` on a ``transform`` request returns the
request's span tree (decode → queue/batch.assemble → dispatch/execute →
encode) under ``"trace"`` in the response; ``trace_sample_rate`` and
``slow_ms`` record unsolicited traces server-side and emit them as
``trace.sample`` / ``trace.slow`` events on the
:class:`~repro.server.logging.EventLog`.

Observability: every server owns a
:class:`~repro.server.metrics.ServerMetrics` registry (request /
queue-wait / batch-assembly / dispatch latency histograms with
p50/p95/p99, per-model request and overload counters, crash / restart /
quarantine / reload-outcome counters), an
:class:`~repro.server.logging.EventLog` for structured JSON events, and
— for sharded models — a :class:`~repro.server.supervisor.ShardSupervisor`
reconciliation task that restarts crashed worker pools with exponential
backoff and quarantines flapping shards.

Admission control: every transform(_stream) document passes through the
micro-batcher's bounded pending queue; past the bound the server answers
an explicit ``OverloadedError`` response immediately — it never queues
unboundedly and never drops the connection.

All operational chatter (startup banner, final statistics) goes to
*stderr*; stdout stays clean for document output in the CLI paths.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine import artifact_stats, backend_stats
from repro.errors import (
    OverloadedError,
    RegistryError,
    ReproError,
    ServiceError,
)
from repro.obs.trace import NULL_TRACE, TraceContext
from repro.serve.stream import StreamParser
from repro.server.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    DEFAULT_MAX_WAIT_MS,
    MicroBatcher,
)
from repro.server.logging import EventLog
from repro.server.metrics import ServerMetrics
from repro.server.registry import KIND_JSON, KIND_XML, ModelRegistry
from repro.server.supervisor import ShardSupervisor

#: Read size for transform_stream bodies.
STREAM_CHUNK_BYTES = 1 << 16

#: Bound on one request line (asyncio streams default to 64 KiB, which
#: a single large document blows through).  Oversized lines get a
#: structured bad-request response, not a dropped connection.
MAX_LINE_BYTES = 1 << 24

#: Protocol-level (non-library) error type tags.
BAD_REQUEST = "bad-request"


def _error_payload(
    error: Union[Exception, str], type_name: Optional[str] = None
) -> Dict:
    if isinstance(error, Exception):
        return {
            "type": type_name or type(error).__name__,
            "message": str(error),
        }
    return {"type": type_name or BAD_REQUEST, "message": str(error)}


class TransformServer:
    """The asyncio transformation server over one :class:`ModelRegistry`.

    Lifecycle::

        server = TransformServer(registry, port=0)
        await server.start()          # binds; server.port is the real port
        await server.serve_until_stopped()   # returns after request_stop()

    or from synchronous code use :func:`serve_forever` /
    :class:`ServerThread`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: int = DEFAULT_MAX_PENDING,
        metrics: Optional[ServerMetrics] = None,
        events: Optional[EventLog] = None,
        supervise: bool = True,
        supervise_interval: float = 1.0,
        supervisor_options: Optional[Dict] = None,
        trace_sample_rate: float = 0.0,
        slow_ms: Optional[float] = None,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        #: Fraction of transform requests traced unsolicited (0 disables
        #: sampling; a client's ``"trace": true`` always wins).  Sampled
        #: traces land on the event log as ``trace.sample`` events.
        self.trace_sample_rate = max(0.0, min(1.0, float(trace_sample_rate)))
        #: When set, *every* transform request is traced and those whose
        #: end-to-end latency reaches the threshold emit a ``trace.slow``
        #: event carrying the full span breakdown.
        self.slow_ms = slow_ms
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.events = events if events is not None else EventLog(enabled=False)
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
            metrics=self.metrics,
        )
        self.supervisor: Optional[ShardSupervisor] = (
            ShardSupervisor(
                registry,
                self.metrics,
                self.events,
                interval=supervise_interval,
                **(supervisor_options or {}),
            )
            if supervise
            else None
        )
        self._supervisor_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()
        self._stats = {"connections": 0, "requests": 0, "bad_requests": 0}
        self._conn_tasks: set = set()
        self._open_writers: set = set()
        #: Writers currently inside a request; shutdown must not hang
        #: up on these before their response is written.
        self._busy_writers: set = set()
        self._stopping = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves the real port for port 0."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.supervisor is not None:
            self._supervisor_task = asyncio.ensure_future(
                self.supervisor.run()
            )
        self.events.emit(
            "server.start",
            host=self.host,
            port=self.port,
            models=self.registry.keys(),
        )

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`; then tear everything down."""
        if self._server is None:
            await self.start()
        await self._stop_event.wait()
        self._stopping = True
        self._server.close()
        # Hang up on *idle* connections so their handler tasks finish
        # before the loop does (a task alive at loop teardown logs a
        # spurious CancelledError from the streams machinery).  Busy
        # connections keep their transport: the in-flight request still
        # gets its response — including the shutdown errors the batcher
        # resolves pending futures to — and the handler loop exits via
        # the stopping flag right after writing it.
        for writer in list(self._open_writers - self._busy_writers):
            writer.close()
        await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            try:
                await self._supervisor_task
            except asyncio.CancelledError:
                pass
            self._supervisor_task = None
        await self.batcher.close()
        self.registry.close()
        self.events.emit(
            "server.stop",
            requests=self._stats["requests"],
            connections=self._stats["connections"],
        )

    def request_stop(self) -> None:
        """Signal a graceful stop (safe to call from the loop only)."""
        if self._stop_event is not None:
            self._stop_event.set()

    @property
    def stats(self) -> Dict[str, object]:
        snapshot = {
            "server": {
                **self._stats,
                "uptime_s": time.monotonic() - self._started_at,
                "host": self.host,
                "port": self.port,
            },
            "registry": self.registry.stats,
            "batcher": self.batcher.stats,
            "models": self.registry.describe(),
            "backends": backend_stats(),
            "engine_artifacts": artifact_stats(),
        }
        if self.supervisor is not None:
            snapshot["supervisor"] = self.supervisor.stats
        return snapshot

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._stats["connections"] += 1
        self.metrics.inc("repro_connections_total")
        self._conn_tasks.add(asyncio.current_task())
        self._open_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The line blew through MAX_LINE_BYTES; the buffered
                    # rest is unframed, so answer and hang up.
                    self._note_bad_request()
                    await self._write(
                        writer,
                        {
                            "ok": False,
                            "error": _error_payload(
                                f"request line exceeds {MAX_LINE_BYTES} "
                                f"bytes (send large batches via "
                                f"transform_stream)"
                            ),
                        },
                    )
                    break
                if not line:
                    break
                self._busy_writers.add(writer)
                try:
                    await self._handle_line(line, reader, writer)
                finally:
                    self._busy_writers.discard(writer)
                if self._stopping:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._busy_writers.discard(writer)
            self._open_writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _note_bad_request(self) -> None:
        self._stats["bad_requests"] += 1
        self.metrics.inc("repro_bad_requests_total")

    async def _write(self, writer: asyncio.StreamWriter, payload: Dict) -> None:
        writer.write(json.dumps(payload, ensure_ascii=False).encode() + b"\n")
        await writer.drain()

    async def _handle_line(
        self,
        line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._stats["requests"] += 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            self._note_bad_request()
            await self._write(
                writer,
                {"ok": False, "error": _error_payload(error, BAD_REQUEST)},
            )
            return
        request_id = request.get("id")
        op = request.get("op")
        handler = {
            "transform": self._op_transform,
            "transform_stream": self._op_transform_stream,
            "health": self._op_health,
            "stats": self._op_stats,
            "models": self._op_models,
            "metrics": self._op_metrics,
            "profile": self._op_profile,
            "reload": self._op_reload,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            self._note_bad_request()
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": False,
                    "error": _error_payload(f"unknown op {op!r}"),
                },
            )
            return
        await handler(request, reader, writer)

    # -- operations -----------------------------------------------------

    def _note_outcome(
        self,
        model_label: str,
        outcome: str,
        started_at: float,
        backend: Optional[str] = None,
    ) -> None:
        """The completion hook: request latency + outcome counter."""
        labels = {"model": model_label, "outcome": outcome}
        self.metrics.inc("repro_requests_total", labels)
        if backend is not None:
            self.metrics.inc(
                "repro_backend_requests_total",
                {"model": model_label, "backend": backend},
            )
        self.metrics.observe(
            "repro_request_seconds",
            {"model": model_label},
            max(0.0, time.monotonic() - started_at),
        )

    async def _op_transform(self, request, _reader, writer) -> None:
        started_at = time.monotonic()
        request_id = request.get("id")
        try:
            model = request["model"]
            document = request["document"]
        except KeyError as missing:
            self._note_bad_request()
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": False,
                    "error": _error_payload(
                        f"transform requires a {missing.args[0]!r} field"
                    ),
                },
            )
            return
        response_format = request.get("format", "text")
        if response_format not in ("text", "packed"):
            self._note_bad_request()
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": False,
                    "error": _error_payload(
                        f"unknown response format {response_format!r} "
                        f"(use 'text' or 'packed')"
                    ),
                },
            )
            return
        # Tracing: a client's ``"trace": true`` always records (and gets
        # the span tree in its response); otherwise the sampler or a
        # ``slow_ms`` watch may record unsolicited, landing on the event
        # log instead.  Untraced requests carry the falsy NULL_TRACE —
        # the fast path costs one truthiness check per span site.
        trace_requested = bool(request.get("trace"))
        sampled = (
            not trace_requested
            and self.trace_sample_rate > 0.0
            and random.random() < self.trace_sample_rate
        )
        trace = (
            TraceContext()
            if trace_requested or sampled or self.slow_ms is not None
            else NULL_TRACE
        )
        # Unresolvable names share one label value: metric cardinality
        # must not be client-controlled.
        model_label = "<unresolved>"
        outcome_label = "error"
        backend_label = None
        try:
            entry = self.registry.get(str(model))
            model_label = entry.key
            backend_label = entry.backend
            if response_format == "packed" and entry.kind in (
                KIND_XML,
                KIND_JSON,
            ):
                raise ServiceError(
                    f"model {entry.key} is a transformation bundle; "
                    f"the packed format serves raw transducer models"
                )
            with trace.span("decode", model=entry.key):
                tree = entry.parse_document(str(document))
            outcome = await self.batcher.submit(entry, tree, trace=trace)
            if isinstance(outcome, Exception):
                response = {
                    "id": request_id,
                    "ok": False,
                    "model": entry.key,
                    "error": _error_payload(outcome),
                }
                if isinstance(outcome, OverloadedError):
                    outcome_label = "overload"
            elif response_format == "packed":
                outcome_label = "ok"
                with trace.span("encode", format="packed"):
                    packed = entry.render_packed(outcome)
                response = {
                    "id": request_id,
                    "ok": True,
                    "model": entry.key,
                    "packed": packed,
                }
            else:
                outcome_label = "ok"
                with trace.span("encode", format="text"):
                    rendered = entry.render_output(outcome)
                response = {
                    "id": request_id,
                    "ok": True,
                    "model": entry.key,
                    "document": rendered,
                }
        except OverloadedError as error:
            outcome_label = "overload"
            response = {
                "id": request_id,
                "ok": False,
                "error": _error_payload(error),
            }
        except ReproError as error:
            response = {
                "id": request_id,
                "ok": False,
                "error": _error_payload(error),
            }
        except RecursionError:
            # Mirror the CLI's mapping: deep documents are a structured
            # failure, not a dropped connection (the engine itself is
            # iterative; parsing and text rendering are recursive —
            # packed responses render deep *outputs* fine).
            response = {
                "id": request_id,
                "ok": False,
                "error": _error_payload(
                    ReproError(
                        "document parsing or rendering exceeded the "
                        "recursion limit"
                    )
                ),
            }
        if trace_requested and trace:
            # The span tree the client asked for: it is serialized (and
            # the root closed) *before* the response is written, so it
            # never contains the write span of its own response.
            response["trace"] = trace.to_dict()
        self._note_outcome(
            model_label, outcome_label, started_at, backend_label
        )
        if trace:
            write_started = time.monotonic()
            await self._write(writer, response)
            trace.add_span("write", write_started, time.monotonic())
            self._finish_trace(
                trace, trace_requested, sampled, model_label,
                outcome_label, started_at,
            )
        else:
            await self._write(writer, response)

    def _finish_trace(
        self,
        trace: TraceContext,
        requested: bool,
        sampled: bool,
        model_label: str,
        outcome_label: str,
        started_at: float,
    ) -> None:
        """Post-response trace bookkeeping: counters and trace.* events.

        Runs after the response bytes are on the wire, so serializing
        the span tree for the event log never adds to request latency —
        only the overhead histogram knows it happened.
        """
        overhead_started = time.monotonic()
        trace.finish()
        elapsed_ms = (overhead_started - started_at) * 1000.0
        mode = "requested" if requested else ("sampled" if sampled else "watch")
        self.metrics.inc("repro_traces_total", {"mode": mode})
        if self.slow_ms is not None and elapsed_ms >= self.slow_ms:
            self.events.emit(
                "trace.slow",
                model=model_label,
                outcome=outcome_label,
                duration_ms=round(elapsed_ms, 3),
                threshold_ms=self.slow_ms,
                spans=trace.to_dict(),
            )
        elif sampled:
            self.events.emit(
                "trace.sample",
                model=model_label,
                outcome=outcome_label,
                duration_ms=round(elapsed_ms, 3),
                spans=trace.to_dict(),
            )
        self.metrics.observe(
            "repro_trace_overhead_seconds",
            None,
            max(0.0, time.monotonic() - overhead_started),
        )

    async def _op_transform_stream(self, request, reader, writer) -> None:
        """Chunked document-stream body → per-document response lines.

        XML models read the body as a forest of XML documents; JSON
        models read it as JSON lines (one document per line).
        """
        request_id = request.get("id")

        async def fail(error, consumed_body: bool) -> None:
            # The body must always be drained, or it would be parsed as
            # protocol lines; only then answer with the failure.
            if not consumed_body:
                await self._drain_body(reader, request)
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": False,
                    "done": True,
                    "error": _error_payload(error),
                },
            )

        try:
            model = str(request["model"])
            remaining = int(request["content_length"])
            if remaining < 0:
                raise ValueError("content_length must be non-negative")
        except (KeyError, TypeError, ValueError) as error:
            self._note_bad_request()
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": False,
                    "done": True,
                    "error": _error_payload(
                        f"transform_stream needs 'model' and a numeric "
                        f"'content_length' ({error})"
                    ),
                },
            )
            return
        try:
            entry = self.registry.get(model)
        except RegistryError as error:
            await fail(error, consumed_body=False)
            return
        if entry.kind not in (KIND_XML, KIND_JSON):
            await fail(
                ServiceError(
                    f"model {entry.key} is a raw transducer; "
                    f"transform_stream serves XML and JSON "
                    f"transformation bundles"
                ),
                consumed_body=False,
            )
            return

        # Pin the entry: a mid-stream hot reload must not swap machines
        # under the open stream (new requests see the new model).
        entry.acquire()
        if entry.kind == KIND_JSON:
            from repro.json.jsonio import JsonLinesParser

            parser = JsonLinesParser()
        else:
            parser = StreamParser(ignore_attributes=True, forest=True)
        tasks = []  # per-document batcher futures, in stream order
        count = failures = 0
        try:
            while remaining > 0:
                chunk = await reader.read(min(remaining, STREAM_CHUNK_BYTES))
                if not chunk:
                    raise ServiceError(
                        "connection closed inside a transform_stream body"
                    )
                remaining -= len(chunk)
                parser.feed(chunk)
                for document in parser.ready():
                    tasks.append(
                        asyncio.ensure_future(
                            self._submit_stream_document(entry, document)
                        )
                    )
                # Answer completed head-of-line documents while the body
                # is still arriving: bounded memory, ordered responses.
                while tasks and tasks[0].done():
                    count, failures = await self._answer_stream_document(
                        writer, request_id, entry, count, failures,
                        tasks.pop(0),
                    )
            for document in parser.close():
                tasks.append(
                    asyncio.ensure_future(
                        self._submit_stream_document(entry, document)
                    )
                )
            for task in tasks:
                count, failures = await self._answer_stream_document(
                    writer, request_id, entry, count, failures, task
                )
            tasks = []
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": failures == 0,
                    "done": True,
                    "count": count,
                    "failures": failures,
                },
            )
        except ReproError as error:
            for task in tasks:
                task.cancel()
            if remaining > 0:
                await self._drain_body(reader, {"content_length": remaining})
            await self._write(
                writer,
                {
                    "id": request_id,
                    "ok": False,
                    "done": True,
                    "count": count,
                    "failures": failures,
                    "error": _error_payload(error),
                },
            )
        finally:
            entry.release()

    async def _submit_stream_document(self, entry, document):
        """One stream document through the batcher; outcomes, not raises."""
        started_at = time.monotonic()
        try:
            outcome = await self.batcher.submit(entry, document)
        except ReproError as error:  # overload/shutdown → per-doc outcome
            outcome = error
        if isinstance(outcome, OverloadedError):
            label = "overload"
        elif isinstance(outcome, Exception):
            label = "error"
        else:
            label = "ok"
        self._note_outcome(entry.key, label, started_at, entry.backend)
        return outcome

    async def _answer_stream_document(
        self, writer, request_id, entry, count, failures, task
    ):
        outcome = await task
        response = {"id": request_id, "seq": count}
        if not isinstance(outcome, Exception):
            try:
                response["ok"] = True
                response["document"] = entry.render_output(outcome)
            except RecursionError:
                outcome = ReproError(
                    "document rendering exceeded the recursion limit"
                )
        if isinstance(outcome, Exception):
            failures += 1
            response["ok"] = False
            response["error"] = _error_payload(outcome)
        count += 1
        await self._write(writer, response)
        return count, failures

    async def _drain_body(self, reader, request) -> None:
        """Discard an unread transform_stream body after an early error."""
        try:
            remaining = int(request.get("content_length", 0))
        except (TypeError, ValueError):
            return
        while remaining > 0:
            chunk = await reader.read(min(remaining, STREAM_CHUNK_BYTES))
            if not chunk:
                return
            remaining -= len(chunk)

    async def _op_health(self, request, _reader, writer) -> None:
        degraded = self.supervisor is not None and self.supervisor.degraded
        payload = {
            "id": request.get("id"),
            "ok": True,
            "status": "degraded" if degraded else "serving",
            "models": self.registry.keys(),
            "pending": self.batcher.pending,
            "uptime_s": time.monotonic() - self._started_at,
        }
        if self.supervisor is not None:
            payload["shards"] = self.supervisor.describe()
        await self._write(writer, payload)

    async def _op_metrics(self, request, _reader, writer) -> None:
        """The metrics snapshot (JSON) plus the Prometheus exposition.

        The snapshot folds in the process-wide engine counters — the
        artifact cache (compiles avoided) and the per-backend batch/hit
        tallies — so one scrape answers both "how is the server doing"
        and "which execution path is doing the work".
        """
        snapshot = self.metrics.snapshot()
        snapshot["engine_artifacts"] = artifact_stats()
        snapshot["backends"] = backend_stats()
        await self._write(
            writer,
            {
                "id": request.get("id"),
                "ok": True,
                "metrics": snapshot,
                "text": self.metrics.render_prometheus(),
            },
        )

    async def _op_profile(self, request, _reader, writer) -> None:
        """Per-model engine profiler snapshots (hot rules, sweep times).

        ``{"op": "profile"}`` answers for every model whose engine has
        been built; ``"model"`` narrows to one.  Models that never
        compiled (no request reached them, no ``--warm``) are omitted —
        a profile of nothing would claim zeros it never measured.
        """
        model = request.get("model")
        try:
            if model is not None:
                entries = [self.registry.get(str(model))]
            else:
                entries = [
                    self.registry.get(key) for key in self.registry.keys()
                ]
        except RegistryError as error:
            await self._write(
                writer,
                {
                    "id": request.get("id"),
                    "ok": False,
                    "error": _error_payload(error),
                },
            )
            return
        profiles: Dict[str, Dict] = {}
        for entry in entries:
            snapshot = entry.profile()
            if snapshot is not None:
                profiles[entry.key] = snapshot
        await self._write(
            writer,
            {"id": request.get("id"), "ok": True, "profiles": profiles},
        )

    async def _op_stats(self, request, _reader, writer) -> None:
        await self._write(
            writer, {"id": request.get("id"), "ok": True, "stats": self.stats}
        )

    async def _op_models(self, request, _reader, writer) -> None:
        await self._write(
            writer,
            {
                "id": request.get("id"),
                "ok": True,
                "models": self.registry.describe(),
            },
        )

    async def _op_reload(self, request, _reader, writer) -> None:
        try:
            summary = self.registry.reload()
        except RegistryError as error:
            # Registry-level failure (unreadable directory, duplicate
            # keys): nothing changed, but the outcome is still recorded.
            self.metrics.inc("repro_reload_total", {"outcome": "failed"})
            self.events.emit("registry.reload", error=str(error))
            await self._write(
                writer,
                {
                    "id": request.get("id"),
                    "ok": False,
                    "error": _error_payload(error),
                },
            )
            return
        self._record_reload(summary)
        await self._write(
            writer, {"id": request.get("id"), "ok": True, "reload": summary}
        )

    def _record_reload(self, summary: Dict) -> None:
        """Reload outcomes land in metrics and the structured log —
        not only in the caller's return payload."""
        for outcome in ("loaded", "reloaded", "kept", "dropped", "failed"):
            count = len(summary.get(outcome, ()))
            if count:
                self.metrics.inc(
                    "repro_reload_total", {"outcome": outcome}, by=count
                )
        self.events.emit(
            "registry.reload",
            **{
                outcome: summary.get(outcome, [])
                for outcome in (
                    "loaded", "reloaded", "kept", "dropped", "failed",
                )
            },
        )

    async def _op_shutdown(self, request, _reader, writer) -> None:
        await self._write(
            writer, {"id": request.get("id"), "ok": True, "stopping": True}
        )
        self.request_stop()


# ---------------------------------------------------------------------------
# Synchronous entry points
# ---------------------------------------------------------------------------


def serve_forever(
    models_dir: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 7455,
    jobs: Optional[int] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    max_pending: int = DEFAULT_MAX_PENDING,
    stats: bool = False,
    metrics: bool = False,
    log_json: bool = False,
    backend: Optional[str] = None,
    warm: bool = False,
    trace_sample_rate: float = 0.0,
    slow_ms: Optional[float] = None,
) -> int:
    """Run a transformation server until SIGINT/SIGTERM; returns 0.

    Loads every model under ``models_dir`` (sharding each across
    ``jobs`` worker processes when ``jobs > 1``), binds ``host:port``
    (port ``0`` picks a free one), and serves until interrupted.  The
    startup banner — ``listening on HOST:PORT`` — and the optional final
    statistics go to stderr; stdout is never written.

    ``metrics=True`` (CLI ``--metrics``) additionally prints the final
    Prometheus text exposition to stderr on shutdown; a *live* scrape
    is always available through the ``metrics`` protocol verb
    (``ServerClient.metrics()`` / ``metrics_text()``).  ``log_json=True``
    (CLI ``--log-json``) streams structured one-line JSON events —
    startup, reload outcomes, shard crashes/restarts/quarantines,
    shutdown — to stderr.  ``backend`` (CLI ``--backend``) sets the
    server-wide execution backend default; per-model ``"backend"``
    artifact keys still win.  ``warm=True`` (CLI ``--warm``)
    precompiles or cache-loads every model's engine — and prestarts the
    sharded pools — *before* the socket opens, so the first request
    never pays compilation; with fresh ``.engine`` sidecars the boot
    compiles nothing (the banner reports the split).

    ``trace_sample_rate`` (CLI ``--trace-sample-rate``) traces that
    fraction of transform requests unsolicited, emitting each as a
    ``trace.sample`` event; ``slow_ms`` (CLI ``--slow-ms``) traces every
    request and emits a ``trace.slow`` event with the span breakdown for
    any whose end-to-end latency reaches the threshold.  Both event
    kinds reach stderr only under ``log_json=True``.
    """
    registry = ModelRegistry(models_dir, jobs=jobs, backend=backend)
    if warm:
        warmed = registry.warm()
        print(
            f"repro server warmed {warmed['warmed']} engines "
            f"({warmed['from_cache']} from artifact cache, "
            f"{warmed['compiled']} compiled)",
            file=sys.stderr,
            flush=True,
        )
    server = TransformServer(
        registry,
        host=host,
        port=port,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_pending=max_pending,
        events=EventLog(stream=sys.stderr, enabled=log_json),
        trace_sample_rate=trace_sample_rate,
        slow_ms=slow_ms,
    )

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, server.request_stop)
        except (ImportError, NotImplementedError):  # pragma: no cover
            pass  # platforms without POSIX signal handling
        print(
            f"repro server listening on {server.host}:{server.port} "
            f"({len(registry.keys())} models: "
            f"{', '.join(registry.keys()) or 'none'})",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler platforms
        pass
    if stats:
        _print_stats(server)
    if metrics:
        print(server.metrics.render_prometheus(), file=sys.stderr, flush=True)
    print("repro server stopped", file=sys.stderr, flush=True)
    return 0


def _print_stats(server: TransformServer) -> None:
    """Final server statistics, on stderr (stdout stays pipeable)."""
    snapshot = server.stats
    for section in ("server", "registry", "batcher"):
        counters = snapshot[section]
        line = ", ".join(
            f"{key} {value if not isinstance(value, float) else round(value, 3)}"
            for key, value in counters.items()
        )
        print(f"stats: {section}: {line}", file=sys.stderr, flush=True)


class ServerThread:
    """A server on a background thread — tests, benchmarks, fixtures.

    ::

        with ServerThread("models/", jobs=2, max_wait_ms=5) as handle:
            client = ServerClient(handle.host, handle.port)

    The context exit requests a graceful stop and joins the thread; the
    registry and batcher are torn down on the loop before it finishes.
    """

    def __init__(self, models_dir: Union[str, Path], **server_kwargs):
        self._models_dir = models_dir
        self._jobs = server_kwargs.pop("jobs", None)
        self._backend = server_kwargs.pop("backend", None)
        self._warm = server_kwargs.pop("warm", False)
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[TransformServer] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        try:
            registry = ModelRegistry(
                self._models_dir, jobs=self._jobs, backend=self._backend
            )
        except BaseException as error:  # surface on __enter__
            self._failure = error
            self._ready.set()
            return
        if self._warm:
            registry.warm()

        async def _main() -> None:
            self.server = TransformServer(registry, **self._server_kwargs)
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(_main())
        except BaseException as error:  # pragma: no cover - debug aid
            self._failure = error
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._failure is not None:
            raise self._failure
        if self.server is None:
            raise ServiceError("server thread failed to start in time")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=60)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise ServiceError("server thread did not stop within 60 s")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
