"""Latency-bounded micro-batching of concurrent transform requests.

A network server sees single-document requests; the compiled engine and
the sharded :class:`~repro.serve.service.TransformService` are fastest
on *forests* (hash-consed sharing makes overlapping documents nearly
free, and one dispatch amortizes the executor hop and the pool's codec
work over the whole batch).  :class:`MicroBatcher` bridges the two:

* requests for the same model entry coalesce into one pending batch;
* the batch dispatches when it reaches ``max_batch`` documents **or**
  when the oldest request has waited ``max_wait_ms`` — the knob bounds
  the latency a request can pay for the throughput of its neighbours;
* dispatch runs in a thread-pool executor (the event loop never blocks
  on engine work) and per-entry dispatches are serialized — a
  :class:`TransformService` is single-consumer — while distinct models
  translate concurrently;
* outcomes are **per request**: a document outside the domain resolves
  its own request to the engine's exact
  :class:`~repro.errors.UndefinedTransductionError` and never fails the
  rest of the coalesced batch.  Only an infrastructure failure of the
  whole dispatch (a :class:`~repro.errors.ServiceError` pool loss)
  resolves every member — still as per-request outcomes, never as a
  dropped connection;
* admission is bounded: once ``max_pending`` requests are admitted and
  not yet resolved, :meth:`submit` raises
  :class:`~repro.errors.OverloadedError` immediately instead of
  queueing — the explicit overload response of the protocol layer.

``max_batch=1`` degrades to per-request dispatch (the benchmark
baseline); semantics are identical either way, pinned by the
differential server tests.
"""

from __future__ import annotations

import asyncio
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OverloadedError, ServiceError
from repro.obs.trace import Span, TraceContext
from repro.server.metrics import ServerMetrics
from repro.server.registry import ModelEntry

#: Default documents per coalesced batch.
DEFAULT_MAX_BATCH = 32
#: Default bound (milliseconds) on the wait a request pays to coalesce.
DEFAULT_MAX_WAIT_MS = 2.0
#: Default bound on admitted-but-unresolved requests.
DEFAULT_MAX_PENDING = 1024


class MicroBatcher:
    """Coalesce concurrent single-document requests into forest batches.

    Drive it from one event loop::

        batcher = MicroBatcher(max_batch=32, max_wait_ms=2.0)
        outcome = await batcher.submit(entry, document)

    ``submit`` returns the request's outcome — an output tree, or the
    per-document exception instance (callers decide whether to raise or
    to render a structured error response).
    """

    def __init__(
        self,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: int = DEFAULT_MAX_PENDING,
        executor: Optional[ThreadPoolExecutor] = None,
        metrics: Optional[ServerMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if max_pending < 0:
            raise ServiceError("max_pending must be non-negative")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_pending = max_pending
        #: Latency histograms + counters; a fresh registry when the
        #: caller (the server) did not share one — recording is always
        #: on, it is too cheap to gate.
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._clock = clock
        self._executor = executor or ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-batch"
        )
        self._own_executor = executor is None
        #: Pending (document, future, admitted-at, trace) tuples per
        #: live entry (by identity: a hot reload replaces the entry
        #: object, so an old entry's pending batch drains on the machine
        #: it was admitted to).  ``trace`` is ``None`` on untraced
        #: requests — the overwhelmingly common case.
        self._pending: Dict[
            ModelEntry,
            List[Tuple[object, asyncio.Future, float, Optional[TraceContext]]],
        ] = {}
        self._timers: Dict[ModelEntry, asyncio.TimerHandle] = {}
        self._locks: "weakref.WeakKeyDictionary[ModelEntry, asyncio.Lock]" = (
            weakref.WeakKeyDictionary()
        )
        self._admitted = 0
        self._closed = False
        self._stats = {
            "requests": 0,
            "batches": 0,
            "documents": 0,
            "coalesced": 0,
            "max_batch_seen": 0,
            "errors": 0,
            "overloads": 0,
            "dispatch_failures": 0,
        }

    # -- public API -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted and not yet resolved."""
        return self._admitted

    @property
    def stats(self) -> Dict[str, object]:
        return {
            **self._stats,
            "pending": self._admitted,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_pending": self.max_pending,
        }

    async def submit(
        self,
        entry: ModelEntry,
        document,
        trace: Optional[TraceContext] = None,
    ):
        """Admit one document for ``entry``; await its outcome.

        Raises :class:`OverloadedError` (without queueing) when the
        pending bound is reached, and :class:`ServiceError` after
        :meth:`close`.  Any other failure is *returned* as the
        request's outcome, exception instances included.  A ``trace``
        collects this request's queue/dispatch/execute spans.
        """
        if self._closed:
            raise ServiceError("batcher is closed")
        if self._admitted >= self.max_pending:
            # Refused at admission: counted as an overload, *never*
            # recorded in the queue-wait histogram — the request waited
            # in no queue (the overload regression tests pin this).
            self._stats["overloads"] += 1
            self.metrics.inc(
                "repro_overloads_total", {"model": entry.key}
            )
            raise OverloadedError(
                f"server overloaded: {self._admitted} requests pending "
                f"(bound {self.max_pending}); retry later"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._admitted += 1
        self._stats["requests"] += 1
        entry.acquire()
        try:
            queue = self._pending.setdefault(entry, [])
            queue.append((document, future, self._clock(), trace if trace else None))
            if len(queue) >= self.max_batch:
                self._flush(entry)
            elif len(queue) == 1:
                self._timers[entry] = loop.call_later(
                    self.max_wait_ms / 1000.0, self._flush, entry
                )
            return await future
        finally:
            self._admitted -= 1
            entry.release()

    async def close(self) -> None:
        """Resolve every pending request to a shutdown error; idempotent."""
        if self._closed:
            return
        self._closed = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        batches = list(self._pending.values())
        self._pending.clear()
        for batch in batches:
            for _document, future, _admitted_at, _trace in batch:
                if not future.done():
                    future.set_result(ServiceError("server shutting down"))
        if self._own_executor:
            self._executor.shutdown(wait=True)

    # -- batching internals ---------------------------------------------

    def _flush(self, entry: ModelEntry) -> None:
        """Detach the entry's pending batch and dispatch it.

        This is the batch-close timing hook: assembly time — first
        admission to close — is recorded here, per batch.
        """
        timer = self._timers.pop(entry, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(entry, None)
        if not batch:
            return
        labels = {"model": entry.key}
        closed_at = self._clock()
        self.metrics.observe(
            "repro_batch_assembly_seconds",
            labels,
            max(0.0, closed_at - batch[0][2]),
        )
        self.metrics.observe("repro_batch_documents", labels, len(batch))
        asyncio.ensure_future(self._dispatch(entry, batch, closed_at))

    async def _dispatch(
        self,
        entry: ModelEntry,
        batch: List[
            Tuple[object, asyncio.Future, float, Optional[TraceContext]]
        ],
        closed_at: float,
    ) -> None:
        """Translate one batch in the executor; resolve its futures."""
        documents = [document for document, _future, _admitted_at, _t in batch]
        self._stats["batches"] += 1
        self._stats["documents"] += len(batch)
        if len(batch) > 1:
            self._stats["coalesced"] += len(batch)
        self._stats["max_batch_seen"] = max(
            self._stats["max_batch_seen"], len(batch)
        )
        lock = self._locks.get(entry)
        if lock is None:
            lock = self._locks[entry] = asyncio.Lock()
        loop = asyncio.get_running_loop()
        labels = {"model": entry.key}
        # One shared collector for the execute spans of this batch: the
        # executor thread records into it during ``run_batch``, and its
        # spans are grafted under every traced member's dispatch span
        # afterwards (a batch runs once however many members watch it).
        any_traced = any(trace is not None for *_rest, trace in batch)
        batch_trace = TraceContext(name="batch") if any_traced else None
        dispatch_started = self._clock()
        try:
            async with lock:
                dispatch_started = self._clock()
                for _document, _future, admitted_at, _trace in batch:
                    self.metrics.observe(
                        "repro_queue_wait_seconds",
                        labels,
                        max(0.0, dispatch_started - admitted_at),
                    )
                if batch_trace is None:
                    outcomes = await loop.run_in_executor(
                        self._executor, entry.run_batch, documents
                    )
                else:
                    outcomes = await loop.run_in_executor(
                        self._executor, entry.run_batch, documents, batch_trace
                    )
        except Exception as error:  # infrastructure, not per-document
            self._stats["dispatch_failures"] += 1
            if not isinstance(error, ServiceError):
                error = ServiceError(
                    f"batch dispatch failed: {type(error).__name__}: {error}"
                )
            outcomes = [error] * len(batch)
        dispatch_ended = self._clock()
        self.metrics.observe(
            "repro_dispatch_seconds",
            labels,
            max(0.0, dispatch_ended - dispatch_started),
        )
        self._stats["errors"] += sum(
            1 for outcome in outcomes if isinstance(outcome, Exception)
        )
        if any_traced:
            executed = batch_trace.root.children
            for _document, _future, admitted_at, trace in batch:
                if trace is None:
                    continue
                queue_span = trace.add_span(
                    "queue", admitted_at, dispatch_started
                )
                # The slice of this member's wait spent assembling the
                # batch (clamped: stays inside the member's own queue
                # interval even for late joiners).
                assemble = Span("batch.assemble", admitted_at)
                assemble.ended = min(
                    max(admitted_at, closed_at), dispatch_started
                )
                queue_span.children.append(assemble)
                trace.add_span(
                    "dispatch",
                    dispatch_started,
                    dispatch_ended,
                    meta={"batch_documents": len(batch)},
                    children=executed,
                )
        for (_document, future, _admitted_at, _trace), outcome in zip(
            batch, outcomes
        ):
            if not future.done():
                future.set_result(outcome)
