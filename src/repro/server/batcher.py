"""Latency-bounded micro-batching of concurrent transform requests.

A network server sees single-document requests; the compiled engine and
the sharded :class:`~repro.serve.service.TransformService` are fastest
on *forests* (hash-consed sharing makes overlapping documents nearly
free, and one dispatch amortizes the executor hop and the pool's codec
work over the whole batch).  :class:`MicroBatcher` bridges the two:

* requests for the same model entry coalesce into one pending batch;
* the batch dispatches when it reaches ``max_batch`` documents **or**
  when the oldest request has waited ``max_wait_ms`` — the knob bounds
  the latency a request can pay for the throughput of its neighbours;
* dispatch runs in a thread-pool executor (the event loop never blocks
  on engine work) and per-entry dispatches are serialized — a
  :class:`TransformService` is single-consumer — while distinct models
  translate concurrently;
* outcomes are **per request**: a document outside the domain resolves
  its own request to the engine's exact
  :class:`~repro.errors.UndefinedTransductionError` and never fails the
  rest of the coalesced batch.  Only an infrastructure failure of the
  whole dispatch (a :class:`~repro.errors.ServiceError` pool loss)
  resolves every member — still as per-request outcomes, never as a
  dropped connection;
* admission is bounded: once ``max_pending`` requests are admitted and
  not yet resolved, :meth:`submit` raises
  :class:`~repro.errors.OverloadedError` immediately instead of
  queueing — the explicit overload response of the protocol layer.

``max_batch=1`` degrades to per-request dispatch (the benchmark
baseline); semantics are identical either way, pinned by the
differential server tests.
"""

from __future__ import annotations

import asyncio
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OverloadedError, ServiceError
from repro.server.metrics import ServerMetrics
from repro.server.registry import ModelEntry

#: Default documents per coalesced batch.
DEFAULT_MAX_BATCH = 32
#: Default bound (milliseconds) on the wait a request pays to coalesce.
DEFAULT_MAX_WAIT_MS = 2.0
#: Default bound on admitted-but-unresolved requests.
DEFAULT_MAX_PENDING = 1024


class MicroBatcher:
    """Coalesce concurrent single-document requests into forest batches.

    Drive it from one event loop::

        batcher = MicroBatcher(max_batch=32, max_wait_ms=2.0)
        outcome = await batcher.submit(entry, document)

    ``submit`` returns the request's outcome — an output tree, or the
    per-document exception instance (callers decide whether to raise or
    to render a structured error response).
    """

    def __init__(
        self,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: int = DEFAULT_MAX_PENDING,
        executor: Optional[ThreadPoolExecutor] = None,
        metrics: Optional[ServerMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if max_pending < 0:
            raise ServiceError("max_pending must be non-negative")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_pending = max_pending
        #: Latency histograms + counters; a fresh registry when the
        #: caller (the server) did not share one — recording is always
        #: on, it is too cheap to gate.
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._clock = clock
        self._executor = executor or ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-batch"
        )
        self._own_executor = executor is None
        #: Pending (document, future, admitted-at) triples per live
        #: entry (by identity: a hot reload replaces the entry object,
        #: so an old entry's pending batch drains on the machine it was
        #: admitted to).
        self._pending: Dict[
            ModelEntry, List[Tuple[object, asyncio.Future, float]]
        ] = {}
        self._timers: Dict[ModelEntry, asyncio.TimerHandle] = {}
        self._locks: "weakref.WeakKeyDictionary[ModelEntry, asyncio.Lock]" = (
            weakref.WeakKeyDictionary()
        )
        self._admitted = 0
        self._closed = False
        self._stats = {
            "requests": 0,
            "batches": 0,
            "documents": 0,
            "coalesced": 0,
            "max_batch_seen": 0,
            "errors": 0,
            "overloads": 0,
            "dispatch_failures": 0,
        }

    # -- public API -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted and not yet resolved."""
        return self._admitted

    @property
    def stats(self) -> Dict[str, object]:
        return {
            **self._stats,
            "pending": self._admitted,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_pending": self.max_pending,
        }

    async def submit(self, entry: ModelEntry, document):
        """Admit one document for ``entry``; await its outcome.

        Raises :class:`OverloadedError` (without queueing) when the
        pending bound is reached, and :class:`ServiceError` after
        :meth:`close`.  Any other failure is *returned* as the
        request's outcome, exception instances included.
        """
        if self._closed:
            raise ServiceError("batcher is closed")
        if self._admitted >= self.max_pending:
            # Refused at admission: counted as an overload, *never*
            # recorded in the queue-wait histogram — the request waited
            # in no queue (the overload regression tests pin this).
            self._stats["overloads"] += 1
            self.metrics.inc(
                "repro_overloads_total", {"model": entry.key}
            )
            raise OverloadedError(
                f"server overloaded: {self._admitted} requests pending "
                f"(bound {self.max_pending}); retry later"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._admitted += 1
        self._stats["requests"] += 1
        entry.acquire()
        try:
            queue = self._pending.setdefault(entry, [])
            queue.append((document, future, self._clock()))
            if len(queue) >= self.max_batch:
                self._flush(entry)
            elif len(queue) == 1:
                self._timers[entry] = loop.call_later(
                    self.max_wait_ms / 1000.0, self._flush, entry
                )
            return await future
        finally:
            self._admitted -= 1
            entry.release()

    async def close(self) -> None:
        """Resolve every pending request to a shutdown error; idempotent."""
        if self._closed:
            return
        self._closed = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        batches = list(self._pending.values())
        self._pending.clear()
        for batch in batches:
            for _document, future, _admitted_at in batch:
                if not future.done():
                    future.set_result(ServiceError("server shutting down"))
        if self._own_executor:
            self._executor.shutdown(wait=True)

    # -- batching internals ---------------------------------------------

    def _flush(self, entry: ModelEntry) -> None:
        """Detach the entry's pending batch and dispatch it.

        This is the batch-close timing hook: assembly time — first
        admission to close — is recorded here, per batch.
        """
        timer = self._timers.pop(entry, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(entry, None)
        if not batch:
            return
        labels = {"model": entry.key}
        self.metrics.observe(
            "repro_batch_assembly_seconds",
            labels,
            max(0.0, self._clock() - batch[0][2]),
        )
        self.metrics.observe("repro_batch_documents", labels, len(batch))
        asyncio.ensure_future(self._dispatch(entry, batch))

    async def _dispatch(
        self,
        entry: ModelEntry,
        batch: List[Tuple[object, asyncio.Future, float]],
    ) -> None:
        """Translate one batch in the executor; resolve its futures."""
        documents = [document for document, _future, _admitted_at in batch]
        self._stats["batches"] += 1
        self._stats["documents"] += len(batch)
        if len(batch) > 1:
            self._stats["coalesced"] += len(batch)
        self._stats["max_batch_seen"] = max(
            self._stats["max_batch_seen"], len(batch)
        )
        lock = self._locks.get(entry)
        if lock is None:
            lock = self._locks[entry] = asyncio.Lock()
        loop = asyncio.get_running_loop()
        labels = {"model": entry.key}
        dispatch_started = self._clock()
        try:
            async with lock:
                dispatch_started = self._clock()
                for _document, _future, admitted_at in batch:
                    self.metrics.observe(
                        "repro_queue_wait_seconds",
                        labels,
                        max(0.0, dispatch_started - admitted_at),
                    )
                outcomes = await loop.run_in_executor(
                    self._executor, entry.run_batch, documents
                )
        except Exception as error:  # infrastructure, not per-document
            self._stats["dispatch_failures"] += 1
            if not isinstance(error, ServiceError):
                error = ServiceError(
                    f"batch dispatch failed: {type(error).__name__}: {error}"
                )
            outcomes = [error] * len(batch)
        self.metrics.observe(
            "repro_dispatch_seconds",
            labels,
            max(0.0, self._clock() - dispatch_started),
        )
        self._stats["errors"] += sum(
            1 for outcome in outcomes if isinstance(outcome, Exception)
        )
        for (_document, future, _admitted_at), outcome in zip(batch, outcomes):
            if not future.done():
                future.set_result(outcome)
