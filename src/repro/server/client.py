"""A small blocking client for the transformation server.

Used by the test suite, the benchmark harness, and the CLI's
``apply --remote`` mode.  One TCP connection, JSON lines out, JSON
lines back; no dependencies beyond the standard library.

Error mapping: a response's ``error.type`` is the server-side exception
class name.  Types that exist in :mod:`repro.errors` are re-raised as
*that* class with the server's message — ``client.transform`` on an
out-of-domain document raises the byte-identical
:class:`~repro.errors.UndefinedTransductionError` the local ``api.run``
would.  Unknown types raise :class:`~repro.errors.RemoteError`.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Union

from repro import errors as _errors
from repro.errors import RemoteError, ReproError, ServiceError


def error_from_payload(payload: Dict) -> ReproError:
    """Rebuild the library exception a server error payload describes."""
    type_name = str(payload.get("type", "unknown"))
    message = str(payload.get("message", ""))
    candidate = getattr(_errors, type_name, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate(message)
    return RemoteError(f"{type_name}: {message}" if message else type_name)


class ServerClient:
    """Blocking JSON-lines client; use as a context manager.

    >>> with ServerClient(host, port) as client:       # doctest: +SKIP
    ...     client.transform("flip", "root(a(#, #), #)")
    'root(#, a(#, #))'
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._request_id = 0

    # -- transport ------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")

    def _send(self, payload: Dict) -> int:
        self._connect()
        self._request_id += 1
        payload = {"id": self._request_id, **payload}
        try:
            self._file.write(
                json.dumps(payload, ensure_ascii=False).encode() + b"\n"
            )
            self._file.flush()
        except (socket.timeout, OSError) as error:
            self.close()
            raise ServiceError(
                f"send to {self.host}:{self.port} failed ({error}); "
                f"connection closed, the next request will reconnect"
            ) from None
        return self._request_id

    def _read_response(self, expect_id: Optional[int] = None) -> Dict:
        """Read one response line; never leave a stale response behind.

        A ``socket.timeout`` mid-read tears the connection down: the
        server will still eventually write the response for the
        timed-out request, and reusing the socket would hand that stale
        line to the *next* request.  For the same reason a response
        carrying the wrong ``id`` (only checked when the server sent
        one — protocol-level rejections of unparseable lines carry
        none) poisons the connection and is fatal.
        """
        try:
            line = self._file.readline()
        except socket.timeout:
            self.close()
            raise ServiceError(
                f"request to {self.host}:{self.port} timed out after "
                f"{self.timeout}s; connection closed to discard the "
                f"stale response, the next request will reconnect"
            ) from None
        if not line:
            self.close()
            raise ServiceError(
                f"server {self.host}:{self.port} closed the connection"
            )
        response = json.loads(line)
        response_id = response.get("id")
        if (
            expect_id is not None
            and response_id is not None
            and response_id != expect_id
        ):
            self.close()
            raise ServiceError(
                f"response id {response_id} does not match request id "
                f"{expect_id}; connection closed, the next request will "
                f"reconnect"
            )
        return response

    def _request(self, payload: Dict) -> Dict:
        """One round trip; raises on a protocol-level error response."""
        request_id = self._send(payload)
        response = self._read_response(expect_id=request_id)
        if not response.get("ok", False):
            raise error_from_payload(response.get("error", {}))
        return response

    # -- document plane -------------------------------------------------

    def transform(self, model: str, document: str) -> str:
        """Transform one document; raises the server's exact error."""
        return self._request(
            {"op": "transform", "model": model, "document": document}
        )["document"]

    def transform_packed(self, model: str, document: str, decode: bool = True):
        """Transform with a flat-DAG response (transducer models only).

        With ``decode=True`` the postorder records are re-interned into
        the same :class:`~repro.trees.tree.Tree` the local engine would
        return; ``decode=False`` hands back the raw payload dict (the
        throughput benchmark measures the wire, not the client's
        decoder).
        """
        response = self._request(
            {
                "op": "transform",
                "model": model,
                "document": document,
                "format": "packed",
            }
        )
        packed = response["packed"]
        if not decode:
            return packed
        from repro.serve.shard import decode_forest

        records = tuple(tuple(record) for record in packed["records"])
        return decode_forest((records, (packed["root"],)))[0]

    def transform_traced(self, model: str, document: str):
        """Transform one document and return ``(output, trace)``.

        ``trace`` is the server-side span tree of this exact request
        (decode → queue/batch.assemble → dispatch/execute → encode) as
        a plain dict; feed it to
        :func:`repro.obs.trace.render_trace_dict` for the human
        rendering.  Raises the server's exact error on failure, like
        :meth:`transform`.
        """
        response = self._request(
            {
                "op": "transform",
                "model": model,
                "document": document,
                "trace": True,
            }
        )
        return response["document"], response.get("trace")

    def try_transform(
        self, model: str, document: str
    ) -> Union[str, ReproError]:
        """Like :meth:`transform`, but failures come back as values."""
        request_id = self._send(
            {"op": "transform", "model": model, "document": document}
        )
        response = self._read_response(expect_id=request_id)
        if response.get("ok", False):
            return response["document"]
        return error_from_payload(response.get("error", {}))

    def transform_stream(
        self, model: str, stream: Union[str, bytes]
    ) -> List[Union[str, ReproError]]:
        """Ship an XML batch stream; per-document outcomes in order.

        ``stream`` is the raw bytes of one XML document whose root
        element wraps the batch members.  A stream-level failure (parse
        error, unknown model) raises; per-document failures are
        returned in place.
        """
        if isinstance(stream, str):
            stream = stream.encode("utf-8")
        request_id = self._send(
            {
                "op": "transform_stream",
                "model": model,
                "content_length": len(stream),
            }
        )
        try:
            self._file.write(stream)
            self._file.flush()
        except (socket.timeout, OSError) as error:
            self.close()
            raise ServiceError(
                f"stream body send to {self.host}:{self.port} failed "
                f"({error}); connection closed, the next request will "
                f"reconnect"
            ) from None
        outcomes: List[Union[str, ReproError]] = []
        while True:
            response = self._read_response(expect_id=request_id)
            if response.get("done"):
                error = response.get("error")
                if error is not None:
                    raise error_from_payload(error)
                return outcomes
            if response.get("ok", False):
                outcomes.append(response["document"])
            else:
                outcomes.append(
                    error_from_payload(response.get("error", {}))
                )

    # -- admin plane ----------------------------------------------------

    def health(self) -> Dict:
        return self._request({"op": "health"})

    def stats(self) -> Dict:
        return self._request({"op": "stats"})["stats"]

    def models(self) -> List[Dict]:
        return self._request({"op": "models"})["models"]

    def metrics(self) -> Dict:
        """The structured metrics snapshot: counters, gauges, histograms."""
        return self._request({"op": "metrics"})["metrics"]

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the server's metrics."""
        return self._request({"op": "metrics"})["text"]

    def profile(self, model: Optional[str] = None) -> Dict[str, Dict]:
        """Engine profiler snapshots, keyed by model.

        Each snapshot carries the serving backend, sweep counts and
        seconds, per-rule hit counts (hottest first) and per-height
        timings.  Models whose engines never built are omitted; pass
        ``model`` to ask about one specifically.
        """
        payload: Dict = {"op": "profile"}
        if model is not None:
            payload["model"] = model
        return self._request(payload)["profiles"]

    def reload(self) -> Dict[str, List[str]]:
        return self._request({"op": "reload"})["reload"]

    def shutdown(self) -> None:
        """Ask the server to stop gracefully."""
        self._request({"op": "shutdown"})

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
            self._sock = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
