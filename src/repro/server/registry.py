"""The model registry: named, versioned transformations loaded from disk.

A registry watches one directory of JSON artifacts.  Four artifact
kinds are served:

* ``repro/dtop@1`` documents (written by :func:`repro.api.save`) — raw
  transducers over ranked trees; request documents use the paper's term
  syntax (``"f(a, g(b))"``) and results render the same way;
* ``repro/xml-transformation@1`` bundles (written by ``repro learn
  --save``) — end-to-end XML transformations; request documents are XML
  and results render as XML;
* ``repro/json-transformation@1`` bundles (written by
  :func:`repro.json.pipeline.save_json_transformation`) — end-to-end
  JSON transformations; request documents are JSON text and results
  render as canonical single-line JSON;
* ``repro/pipeline@1`` pipelines — ``{"format": …, "stages": [ref, …]}``
  where each ref names a sibling ``repro/dtop@1`` model (``NAME`` or
  ``NAME@VERSION``); the stages are fused through
  :func:`~repro.transducers.compose.compose_chain` at load into one
  single-pass machine (optional ``"earliest": true`` normalizes it).
  A changed member file retires the pipeline entry on reload exactly
  like a change to the pipeline file itself.

Compiled engines persist across processes: every entry carries a
fingerprinted ``NAME@VERSION.engine`` sidecar
(:mod:`repro.engine.artifacts`) that is adopted at load when fresh and
written after the first compilation otherwise, so a restarted server
compiles nothing (``repro server --warm`` makes that happen before the
socket opens).

Naming: ``NAME@VERSION.json`` registers the model under ``NAME@VERSION``;
``NAME.json`` is shorthand for version ``1``.  :meth:`ModelRegistry.get`
resolves a bare ``NAME`` to its highest version (numeric versions order
numerically, others lexicographically).

Hot reload (:meth:`ModelRegistry.reload`) rescans the directory:

* **kept** — files whose size and mtime are unchanged keep their live
  entry, compiled engines, and worker pool;
* **reloaded / dropped** — changed or removed files *retire* the old
  entry: its machine's compiled-engine handle is dropped through the
  existing :meth:`DTOP.clear_caches
  <repro.transducers.dtop.DTOP.clear_caches>` invalidation contract and
  its worker pool is shut down.  Retirement is deferred while requests
  (or open streams) still hold the entry — in-flight work finishes on
  the model version it started with; every *new* request resolves to
  the new entry;
* **failed** — a corrupt or half-written file is isolated: the model's
  live entry (if any) keeps serving its old version, every other file's
  change still commits, and the failure is reported per model in the
  reload summary (and, through the server, in metrics and the
  structured log).

Entries are reference-counted (:meth:`ModelEntry.acquire` /
:meth:`ModelEntry.release`) by the batcher and the stream handlers; the
registry itself is not thread-safe and is driven from the server's
event loop (or a single test thread).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.engine import (
    attach_payload,
    engine_for,
    engine_path_for,
    fingerprint_payload,
    load_engine_artifact,
    resolve_backend,
    write_engine_artifact,
)
from repro.errors import (
    BackendError,
    ModelNotFoundError,
    RegistryError,
    ReproError,
    ServiceError,
    TransducerError,
)
from repro.serialize import dumps as serialize_dumps
from repro.serialize import from_data as serialize_from_data
from repro.serialize import loads as serialize_loads
from repro.trees.tree import Tree, parse_term
from repro.transducers.compose import compose_chain
from repro.transducers.dtop import DTOP
from repro.xml.unranked import UTree
from repro.xml.xmlio import parse_xml, serialize_xml

#: Artifact kinds a registry serves.
KIND_DTOP = "dtop"
KIND_XML = "xml"
KIND_JSON = "json"

#: Bundle format written by ``repro learn --save`` (see ``repro.cli``).
XML_BUNDLE_FORMAT = "repro/xml-transformation@1"

#: Bundle format written by ``save_json_transformation``.
JSON_BUNDLE_FORMAT = "repro/json-transformation@1"

#: Pipeline artifact: a JSON list of member model refs fused at load.
PIPELINE_FORMAT = "repro/pipeline@1"


def _version_key(version: str) -> Tuple:
    """Order versions numerically when possible, lexicographically else."""
    try:
        return (0, int(version), "")
    except ValueError:
        return (1, 0, version)


def _parse_model_filename(path: Path) -> Tuple[str, str]:
    """``NAME@VERSION.json`` → ``(NAME, VERSION)``; bare names get ``1``."""
    stem = path.stem
    if "@" in stem:
        name, _, version = stem.partition("@")
    else:
        name, version = stem, "1"
    if not name or not version:
        raise RegistryError(
            f"model filename {path.name!r} must look like NAME.json or "
            f"NAME@VERSION.json"
        )
    return name, version


class ModelEntry:
    """One live model: machine, codecs, and its (lazy) worker service.

    The entry knows how to parse a request document, translate a batch,
    and render an outcome — the batcher and the protocol handlers stay
    format-agnostic.  ``acquire``/``release`` bracket every use; a
    retired entry tears down its engine handle and pool as soon as the
    last holder releases it.
    """

    def __init__(
        self,
        name: str,
        version: str,
        path: Path,
        kind: str,
        machine: DTOP,
        transformation=None,
        jobs: Optional[int] = None,
        fingerprint: Optional[Tuple[int, int]] = None,
        backend: Optional[str] = None,
        engine_fingerprint: Optional[str] = None,
        member_fingerprints: Optional[
            List[Tuple[Path, Tuple[int, int]]]
        ] = None,
        members: Optional[List[str]] = None,
    ):
        self.name = name
        self.version = version
        self.path = path
        self.kind = kind
        self.machine = machine
        self.transformation = transformation
        self.jobs = max(1, jobs or 1)
        self.fingerprint = fingerprint
        #: Resolved execution backend name this model serves on.
        self.backend = backend if backend is not None else resolve_backend()
        #: Content fingerprint binding the ``.engine`` sidecar to this
        #: model's bytes + backend; ``None`` disables persistence.
        self.engine_fingerprint = engine_fingerprint
        #: For pipelines: the member files (and their stat fingerprints)
        #: the fused machine was built from — reload freshness includes
        #: them.
        self.member_fingerprints = member_fingerprints or []
        #: For pipelines: the member refs, for ``describe()``.
        self.members = members
        self.requests = 0
        self._service = None
        self._refs = 0
        self._retired = False
        self._closed = False
        self._quarantined = False
        self._engine_cached = False
        self._engine_saved = False

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    # -- persistent compiled engine -------------------------------------

    @property
    def engine_cache_path(self) -> Path:
        """The ``NAME@VERSION.engine`` sidecar next to the model JSON."""
        return engine_path_for(self.path)

    @property
    def engine_cached(self) -> bool:
        """Whether this entry's engine came from the artifact cache."""
        return self._engine_cached

    def bind_engine_cache(self) -> bool:
        """Adopt the on-disk compiled payload when it is fresh.

        Called once at load time: a sidecar whose fingerprint matches
        the model bytes + backend is attached as the machine's compiled
        engine, so neither the first request nor ``warm()`` compiles
        anything.  A missing/stale sidecar is a plain miss — the entry
        compiles lazily and :meth:`ensure_engine` rewrites the sidecar.

        Pipelines never come here — their recovery (machine *and*
        payload) runs before the entry exists, in ``_recover_or_fuse``;
        the loader calls :meth:`adopt_recovered_engine` instead.
        """
        if self.engine_fingerprint is None or self.members is not None:
            return False
        payload = load_engine_artifact(
            self.engine_cache_path, self.engine_fingerprint
        )
        if payload is None:
            return False
        try:
            attach_payload(self.machine, payload)
        except Exception:
            # A payload that unpickled but does not decode (e.g. written
            # by a future payload layout) degrades to compilation.
            return False
        self._engine_cached = True
        self._engine_saved = True  # disk already holds this record
        return True

    def adopt_recovered_engine(self) -> None:
        """Record that the loader recovered machine + engine from disk.

        Pipelines recover *before* the entry is constructed (the fused
        machine itself lives in the sidecar), so the loader marks the
        entry afterwards instead of going through
        :meth:`bind_engine_cache`.
        """
        self._engine_cached = True
        self._engine_saved = True

    def ensure_engine(self):
        """The entry's in-process engine; persists the sidecar once.

        Compiles on first use unless :meth:`bind_engine_cache` already
        attached the payload; after the tables exist (either way) the
        ``.engine`` sidecar is written exactly once per entry lifetime —
        atomically, best-effort (a read-only models directory just keeps
        recompiling on future boots).
        """
        engine = engine_for(self.machine, self.backend)
        if not self._engine_saved and self.engine_fingerprint is not None:
            from repro.serve.shard import pack_engine

            payload = pack_engine(
                self.machine._engine.compiled, self.backend
            )
            if self.members is not None:
                # Pipeline sidecars also persist the fused machine, so
                # the next boot skips the product construction too.
                payload = (serialize_dumps(self.machine), payload)
            write_engine_artifact(
                self.engine_cache_path, self.engine_fingerprint, payload
            )
            # One attempt per entry: a failed write (counted in
            # artifact_stats) must not re-run on every batch.
            self._engine_saved = True
        return engine

    def warm(self) -> bool:
        """Precompile/load this entry before it serves traffic.

        Ensures the in-process engine (from the artifact cache when
        possible) and prestarts + warms the sharded worker pool for
        ``jobs > 1`` entries.  Returns whether the engine came from the
        artifact cache rather than a fresh compilation.
        """
        self.ensure_engine()
        service = self.service()
        if service is not None:
            service.warm()
        return self._engine_cached

    def members_fresh(self) -> bool:
        """Whether every member file still matches its load-time stat.

        Entries without members (plain models) are vacuously fresh; a
        pipeline whose member changed on disk must reload even though
        the pipeline file's own stat is unchanged.
        """
        for member_path, stat_fingerprint in self.member_fingerprints:
            try:
                stat = member_path.stat()
            except OSError:
                return False
            if (stat.st_mtime_ns, stat.st_size) != stat_fingerprint:
                return False
        return True

    # -- lifecycle ------------------------------------------------------

    def acquire(self) -> "ModelEntry":
        """Pin the entry: retirement defers until the last release."""
        self._refs += 1
        return self

    def release(self) -> None:
        self._refs -= 1
        if self._retired and self._refs <= 0:
            self.close()

    def retire(self) -> None:
        """Mark the entry stale; close now unless requests still hold it."""
        self._retired = True
        if self._refs <= 0:
            self.close()

    @property
    def retired(self) -> bool:
        return self._retired

    def close(self) -> None:
        """Drop the compiled-engine handle and shut the worker pool down.

        Idempotent.  ``clear_caches`` is the library-wide invalidation
        contract: any service still pointing at the machine re-packs on
        its next dispatch instead of serving stale tables.
        """
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            self._service.close()
            self._service = None
        self.machine.clear_caches()

    # -- serving --------------------------------------------------------

    # -- supervision ----------------------------------------------------

    @property
    def quarantined(self) -> bool:
        return self._quarantined

    def set_quarantined(self, quarantined: bool) -> None:
        """Quarantine (or restore) the entry's sharded worker pool.

        A quarantined entry keeps serving — :meth:`run_batch` degrades
        to the in-process engine, trading the shard's capacity for not
        feeding a flapping pool — and its service is torn down so no
        worker processes linger.  Restoring simply clears the flag; the
        next dispatch (or a supervised :meth:`restart_service`) builds
        a fresh pool.
        """
        if quarantined == self._quarantined:
            return
        self._quarantined = quarantined
        if quarantined and self._service is not None:
            self._service.close()
            self._service = None

    def peek_service(self):
        """The live service if one exists — never creates one."""
        return self._service

    def restart_service(self) -> bool:
        """Supervised pool restart: replace a broken pool, prestarted.

        Returns ``True`` when a sharded pool is live (and warm) after
        the call; ``False`` for in-process, closed, or quarantined
        entries (nothing to restart).
        """
        if self._closed or self._quarantined or self.jobs <= 1:
            return False
        service = self.service()
        return service is not None and service.restart()

    def service(self):
        """The entry's sharded :class:`TransformService` (``jobs > 1``).

        Quarantined entries answer ``None`` — callers fall back to the
        in-process engine exactly as for an unsharded entry.
        """
        if self.jobs <= 1 or self._quarantined:
            return None
        if self._closed:
            # Never resurrect a pool on a torn-down entry: close() has
            # already run, so nothing would ever shut the new pool down.
            raise ServiceError(f"model {self.key} has been unloaded")
        if self._service is None:
            from repro.serve import TransformService

            self._service = TransformService(
                self.machine, jobs=self.jobs, backend=self.backend
            )
        return self._service

    def parse_document(self, text: str) -> Union[Tree, UTree]:
        """Parse one request document in the model's input syntax."""
        if self.kind == KIND_DTOP:
            return parse_term(text)
        if self.kind == KIND_JSON:
            from repro.json.jsonio import parse_json

            return parse_json(text)
        return parse_xml(text, ignore_attributes=True)

    def render_output(self, outcome) -> str:
        """Render one successful outcome in the model's output syntax."""
        if self.kind == KIND_DTOP:
            return str(outcome)
        if self.kind == KIND_JSON:
            from repro.json.jsonio import serialize_json

            return serialize_json(outcome)
        return serialize_xml(outcome)

    def render_packed(self, outcome: Tree) -> Dict[str, object]:
        """Render a transducer outcome as flat DAG records.

        The postorder ``(label, child-index…)`` table of
        :func:`repro.serve.shard.encode_forest`: one record per
        *distinct* subtree, so heavily shared outputs (an audit machine
        checking one document under many states, say) cost their DAG
        size on the wire, not their tree size — and the encoding is
        iterative, so arbitrarily deep outputs are servable where the
        recursive term renderer would overflow.
        """
        from repro.serve.shard import encode_forest

        records, roots = encode_forest([outcome])
        return {"records": records, "root": roots[0]}

    def run_batch(self, documents: List, trace=None) -> List:
        """Translate a coalesced batch; per-document outcomes.

        Outcomes are output trees or exception instances — one bad
        document never fails the batch (the engine and
        ``XMLTransformation.apply_batch`` both report per document).
        An optional :class:`~repro.obs.trace.TraceContext` collects the
        batch's execute (and pipeline encode/decode) spans.
        """
        self.requests += len(documents)
        engine = self.ensure_engine()
        service = self.service()
        if self.kind in (KIND_XML, KIND_JSON):
            return self.transformation.apply_batch(
                documents, service=service, backend=self.backend, trace=trace
            )
        if service is not None:
            return service.run_batch_outcomes(documents, trace=trace)
        if trace:
            with trace.span(
                "execute", backend=engine.backend, documents=len(documents)
            ):
                return engine.run_batch_outcomes(documents)
        return engine.run_batch_outcomes(documents)

    def profile(self) -> Optional[Dict[str, object]]:
        """The in-process engine's profiler snapshot, or ``None``.

        Peeks at the already-compiled engine — never compiles one (a
        registered-but-never-exercised model answers ``None``).  For
        sharded entries (``jobs > 1``) this covers only the parent-side
        engine; worker-process engines profile in their own processes.
        """
        engines = getattr(self.machine, "_engine", None)
        if engines is None:
            return None
        from repro.engine.backends import resolve_backend

        engine = engines.engines.get(resolve_backend(self.backend))
        if engine is None:
            return None
        return engine.profile_snapshot()

    def describe(self) -> Dict[str, object]:
        info = {
            "model": self.key,
            "kind": self.kind,
            "path": str(self.path),
            "jobs": self.jobs,
            "backend": self.backend,
            "states": len(self.machine.states),
            "rules": len(self.machine.rules),
            "requests": self.requests,
            "engine_cached": self._engine_cached,
        }
        if self.members is not None:
            info["members"] = list(self.members)
        if self._quarantined:
            info["quarantined"] = True
        if self._service is not None:
            info["service"] = self._service.stats
        return info


def _resolve_member_path(directory: Path, ref: str) -> Path:
    """Resolve a pipeline member ref to its model file.

    ``NAME@VERSION`` is exact; a bare ``NAME`` picks the highest
    version, mirroring :meth:`ModelRegistry.get`.
    """
    if "@" in ref:
        candidate = directory / f"{ref}.json"
        if not candidate.is_file():
            raise RegistryError(
                f"pipeline member {ref!r} not found "
                f"({candidate.name} missing)"
            )
        return candidate
    candidates: List[Tuple[Path, str]] = []
    for path in directory.glob("*.json"):
        try:
            name, version = _parse_model_filename(path)
        except RegistryError:
            continue
        if name == ref:
            candidates.append((path, version))
    if not candidates:
        raise RegistryError(
            f"pipeline member {ref!r} not found in {directory}"
        )
    return max(candidates, key=lambda pv: _version_key(pv[1]))[0]


def _read_pipeline_members(
    path: Path, data: dict
) -> Tuple[
    List[DTOP],
    List[bytes],
    List[Tuple[Path, Tuple[int, int]]],
    List[str],
    List[str],
]:
    """Read (not fuse) a ``repro/pipeline@1`` artifact's member stages.

    Returns ``(member machines, member raw bytes, member stat
    fingerprints, member refs, member labels)`` — the bytes feed the
    engine fingerprint, the stat fingerprints feed reload freshness,
    the labels name stages in fusion errors.
    """
    stages = data.get("stages")
    if (
        not isinstance(stages, list)
        or not stages
        or not all(isinstance(ref, str) for ref in stages)
    ):
        raise RegistryError(
            f"a {PIPELINE_FORMAT} artifact needs a non-empty "
            f"'stages' list of model refs (NAME or NAME@VERSION)"
        )
    machines: List[DTOP] = []
    member_bytes: List[bytes] = []
    member_fingerprints: List[Tuple[Path, Tuple[int, int]]] = []
    labels: List[str] = []
    for ref in stages:
        member_path = _resolve_member_path(path.parent, ref)
        if member_path == path:
            raise RegistryError(
                f"pipeline member {ref!r} refers to the pipeline itself"
            )
        try:
            member_stat = member_path.stat()
            raw = member_path.read_bytes()
            member_data = json.loads(raw.decode("utf-8"))
        except (OSError, ValueError) as error:
            raise RegistryError(
                f"cannot read pipeline member {member_path.name}: {error}"
            ) from None
        member_format = (
            member_data.get("format")
            if isinstance(member_data, dict)
            else None
        )
        if member_format == PIPELINE_FORMAT:
            raise RegistryError(
                f"pipeline member {member_path.name} is itself a "
                f"pipeline; nesting is not supported"
            )
        try:
            machine = serialize_from_data(member_data)
        except ReproError as error:
            raise RegistryError(
                f"cannot load pipeline member {member_path.name}: {error}"
            ) from None
        if not isinstance(machine, DTOP):
            raise RegistryError(
                f"pipeline member {member_path.name} holds a "
                f"{type(machine).__name__}, not a transducer"
            )
        machines.append(machine)
        member_bytes.append(raw)
        member_fingerprints.append(
            (member_path, (member_stat.st_mtime_ns, member_stat.st_size))
        )
        labels.append(member_path.name)
    return machines, member_bytes, member_fingerprints, list(stages), labels


def _recover_or_fuse(
    path: Path,
    data: dict,
    machines: List[DTOP],
    labels: List[str],
    engine_fingerprint: str,
) -> Tuple[DTOP, bool]:
    """The fused machine of a pipeline; sidecar-recovered when fresh.

    A pipeline's ``.engine`` sidecar stores ``(fused-machine JSON,
    engine payload)``: recovering both skips the product construction,
    the earliest normalization (which itself compiles an intermediate
    machine), *and* the final compilation — a warm boot does zero
    fusion work per pipeline.  Returns ``(machine, recovered)``; on a
    miss the members are fused from scratch.
    """
    record = load_engine_artifact(engine_path_for(path), engine_fingerprint)
    if isinstance(record, tuple) and len(record) == 2:
        fused_json, payload = record
        try:
            machine = serialize_loads(fused_json)
            if isinstance(machine, DTOP):
                attach_payload(machine, payload)
                return machine, True
        except Exception:
            pass  # unreadable recovery record: fall through and fuse
    try:
        fused = compose_chain(
            machines,
            earliest=bool(data.get("earliest", False)),
            labels=labels,
        )
    except TransducerError as error:
        raise RegistryError(str(error)) from None
    return fused, False


def _load_entry(
    path: Path, jobs: Optional[int], default_backend: Optional[str] = None
) -> ModelEntry:
    name, version = _parse_model_filename(path)
    stat = path.stat()
    fingerprint = (stat.st_mtime_ns, stat.st_size)
    # One read, one JSON parse; the loaders below work on the parsed
    # data (a large bundle must not be read and parsed twice per reload,
    # and a single read narrows the window for catching a mid-write
    # file whose fingerprint no longer matches its content).  The raw
    # bytes also feed the engine-artifact content fingerprint.
    try:
        raw_bytes = path.read_bytes()
        data = json.loads(raw_bytes.decode("utf-8"))
    except (OSError, ValueError) as error:
        raise RegistryError(f"cannot read model {path.name}: {error}") from None
    # Per-model backend pin: an artifact's "backend" key beats the
    # server-wide default, which beats REPRO_BACKEND, which beats
    # "tables".  Validated here so a typo (or a backend whose dependency
    # is missing on this host) fails this one file's load — per-file
    # isolation on reload — instead of the first request.
    artifact_backend = data.get("backend") if isinstance(data, dict) else None
    try:
        backend = resolve_backend(artifact_backend, default_backend)
    except BackendError as error:
        raise RegistryError(
            f"cannot load model {path.name}: {error}"
        ) from None
    format_key = data.get("format") if isinstance(data, dict) else None
    content_chunks = [raw_bytes]
    member_fingerprints: List[Tuple[Path, Tuple[int, int]]] = []
    members: Optional[List[str]] = None
    transformation = None
    kind = KIND_DTOP
    engine_fingerprint: Optional[str] = None
    recovered = False
    if format_key == XML_BUNDLE_FORMAT:
        from repro.cli import transformation_from_bundle

        try:
            transformation = transformation_from_bundle(data)
        except (ReproError, KeyError) as error:
            raise RegistryError(
                f"cannot load model {path.name}: {error}"
            ) from None
        machine = transformation.transducer
        kind = KIND_XML
    elif format_key == JSON_BUNDLE_FORMAT:
        from repro.json.pipeline import json_transformation_from_bundle

        try:
            transformation = json_transformation_from_bundle(data)
        except (ReproError, KeyError) as error:
            raise RegistryError(
                f"cannot load model {path.name}: {error}"
            ) from None
        machine = transformation.transducer
        kind = KIND_JSON
    elif format_key == PIPELINE_FORMAT:
        try:
            machines, member_bytes, member_fingerprints, members, labels = (
                _read_pipeline_members(path, data)
            )
            content_chunks.extend(member_bytes)
            engine_fingerprint = fingerprint_payload(content_chunks, backend)
            machine, recovered = _recover_or_fuse(
                path, data, machines, labels, engine_fingerprint
            )
        except RegistryError as error:
            raise RegistryError(
                f"cannot load model {path.name}: {error}"
            ) from None
    else:
        try:
            machine = serialize_from_data(data)
        except ReproError as error:
            raise RegistryError(
                f"cannot load model {path.name}: {error}"
            ) from None
        if not isinstance(machine, DTOP):
            raise RegistryError(
                f"model {path.name} holds a "
                f"{type(machine).__name__}, not a transducer"
            )
    if engine_fingerprint is None:
        engine_fingerprint = fingerprint_payload(content_chunks, backend)
    entry = ModelEntry(
        name,
        version,
        path,
        kind,
        machine,
        transformation=transformation,
        jobs=jobs,
        fingerprint=fingerprint,
        backend=backend,
        engine_fingerprint=engine_fingerprint,
        member_fingerprints=member_fingerprints,
        members=members,
    )
    if members is None:
        entry.bind_engine_cache()
    elif recovered:
        entry.adopt_recovered_engine()
    return entry


class ModelRegistry:
    """Load, resolve, and hot-reload the models of one directory."""

    def __init__(
        self,
        models_dir: Union[str, Path],
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        self.models_dir = Path(models_dir)
        self.jobs = jobs
        #: Server-wide default backend; per-model artifacts override it.
        self.backend = backend
        self._entries: Dict[str, ModelEntry] = {}
        self._stats = {
            "loads": 0,
            "reloads": 0,
            "drops": 0,
            "failed_loads": 0,
            "lookups": 0,
            "misses": 0,
        }
        self._closed = False
        if not self.models_dir.is_dir():
            raise RegistryError(
                f"model directory {self.models_dir} does not exist"
            )
        # Boot is strict: a registry must not come up half-loaded (a
        # *reload* of a running registry isolates per-file failures
        # instead — see reload()).
        summary = self.reload()
        if summary["failed"]:
            self.close()
            raise RegistryError(
                "cannot load model directory "
                f"{self.models_dir}: {'; '.join(summary['failed'])}"
            )

    # -- loading --------------------------------------------------------

    def reload(self) -> Dict[str, List[str]]:
        """Rescan the directory; returns what happened per model key.

        Unchanged files keep their live entries (and pools).  Changed
        and removed files retire the old entry — deferred teardown, see
        the module docstring — and changed files load a fresh one.

        Failures are isolated **per file**: a half-written or corrupt
        artifact never retires the entry that is still serving (the old
        version keeps answering requests, and a later reload retries
        the file), never blocks other files' changes from committing,
        and is reported under ``summary["failed"]`` as
        ``"key: reason"`` lines — the server records these in metrics
        (``repro_reload_total{outcome="failed"}``) and the structured
        log.  Only registry-level corruption (an unreadable directory,
        two files claiming one ``name@version``) aborts the whole
        reload with the live table untouched.
        """
        if self._closed:
            raise RegistryError("registry is closed")
        summary: Dict[str, List[str]] = {
            "loaded": [],
            "reloaded": [],
            "kept": [],
            "dropped": [],
            "failed": [],
        }
        # Two-phase: load everything first, then commit + retire — a
        # failure mid-scan must not leave a half-committed table.
        seen: Dict[str, ModelEntry] = {}
        to_retire: List[ModelEntry] = []
        for path in sorted(self.models_dir.glob("*.json"), key=lambda p: p.name):
            name, version = _parse_model_filename(path)
            key = f"{name}@{version}"
            if key in seen:
                raise RegistryError(
                    f"duplicate model {key}: {seen[key].path.name} and "
                    f"{path.name}"
                )
            old = self._entries.get(key)
            stat = path.stat()
            if (
                old is not None
                and old.fingerprint == (stat.st_mtime_ns, stat.st_size)
                and old.members_fresh()
            ):
                seen[key] = old
                summary["kept"].append(key)
                continue
            try:
                seen[key] = _load_entry(path, self.jobs, self.backend)
            except RegistryError as error:
                summary["failed"].append(f"{key}: {error}")
                if old is not None:
                    # Keep serving the version that was live; the stale
                    # fingerprint makes the next reload retry the file.
                    seen[key] = old
                continue
            if old is None:
                summary["loaded"].append(key)
            else:
                to_retire.append(old)
                summary["reloaded"].append(key)
        for key, entry in self._entries.items():
            if key not in seen:
                to_retire.append(entry)
                summary["dropped"].append(key)
        self._entries = seen
        self._stats["loads"] += len(summary["loaded"])
        self._stats["reloads"] += len(summary["reloaded"])
        self._stats["drops"] += len(summary["dropped"])
        self._stats["failed_loads"] += len(summary["failed"])
        for old in to_retire:
            old.retire()
        return summary

    def warm(self) -> Dict[str, int]:
        """Precompile or cache-load every entry before serving traffic.

        Drives :meth:`ModelEntry.warm` over the whole table (engines
        attached, sidecars written, sharded pools prestarted) and
        reports ``{"warmed", "from_cache", "compiled"}`` — against a
        fresh sidecar set, ``compiled == 0``.
        """
        if self._closed:
            raise RegistryError("registry is closed")
        warmed = 0
        from_cache = 0
        for key in self.keys():
            if self._entries[key].warm():
                from_cache += 1
            warmed += 1
        return {
            "warmed": warmed,
            "from_cache": from_cache,
            "compiled": warmed - from_cache,
        }

    # -- resolution -----------------------------------------------------

    def get(self, key: str) -> ModelEntry:
        """Resolve ``name@version`` (exact) or ``name`` (highest version)."""
        if self._closed:
            raise RegistryError("registry is closed")
        self._stats["lookups"] += 1
        if "@" in key:
            entry = self._entries.get(key)
            if entry is None:
                self._stats["misses"] += 1
                raise ModelNotFoundError(
                    f"no model {key!r} in {self.models_dir} "
                    f"(available: {', '.join(sorted(self._entries)) or 'none'})"
                )
            return entry
        candidates = [
            entry for entry in self._entries.values() if entry.name == key
        ]
        if not candidates:
            self._stats["misses"] += 1
            raise ModelNotFoundError(
                f"no model named {key!r} in {self.models_dir} "
                f"(available: {', '.join(sorted(self._entries)) or 'none'})"
            )
        return max(candidates, key=lambda e: _version_key(e.version))

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> Iterable[ModelEntry]:
        return list(self._entries.values())

    def describe(self) -> List[Dict[str, object]]:
        return [self._entries[key].describe() for key in self.keys()]

    @property
    def stats(self) -> Dict[str, int]:
        return {**self._stats, "models": len(self._entries)}

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Retire every entry and shut their pools down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for entry in self._entries.values():
            entry.retire()
        self._entries = {}

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
