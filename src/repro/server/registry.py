"""The model registry: named, versioned transformations loaded from disk.

A registry watches one directory of JSON artifacts.  Two artifact kinds
are served:

* ``repro/dtop@1`` documents (written by :func:`repro.api.save`) — raw
  transducers over ranked trees; request documents use the paper's term
  syntax (``"f(a, g(b))"``) and results render the same way;
* ``repro/xml-transformation@1`` bundles (written by ``repro learn
  --save``) — end-to-end XML transformations; request documents are XML
  and results render as XML.

Naming: ``NAME@VERSION.json`` registers the model under ``NAME@VERSION``;
``NAME.json`` is shorthand for version ``1``.  :meth:`ModelRegistry.get`
resolves a bare ``NAME`` to its highest version (numeric versions order
numerically, others lexicographically).

Hot reload (:meth:`ModelRegistry.reload`) rescans the directory:

* **kept** — files whose size and mtime are unchanged keep their live
  entry, compiled engines, and worker pool;
* **reloaded / dropped** — changed or removed files *retire* the old
  entry: its machine's compiled-engine handle is dropped through the
  existing :meth:`DTOP.clear_caches
  <repro.transducers.dtop.DTOP.clear_caches>` invalidation contract and
  its worker pool is shut down.  Retirement is deferred while requests
  (or open streams) still hold the entry — in-flight work finishes on
  the model version it started with; every *new* request resolves to
  the new entry;
* **failed** — a corrupt or half-written file is isolated: the model's
  live entry (if any) keeps serving its old version, every other file's
  change still commits, and the failure is reported per model in the
  reload summary (and, through the server, in metrics and the
  structured log).

Entries are reference-counted (:meth:`ModelEntry.acquire` /
:meth:`ModelEntry.release`) by the batcher and the stream handlers; the
registry itself is not thread-safe and is driven from the server's
event loop (or a single test thread).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.engine import engine_for, resolve_backend
from repro.errors import (
    BackendError,
    ModelNotFoundError,
    RegistryError,
    ReproError,
    ServiceError,
)
from repro.serialize import from_data as serialize_from_data
from repro.trees.tree import Tree, parse_term
from repro.transducers.dtop import DTOP
from repro.xml.unranked import UTree
from repro.xml.xmlio import parse_xml, serialize_xml

#: Artifact kinds a registry serves.
KIND_DTOP = "dtop"
KIND_XML = "xml"

#: Bundle format written by ``repro learn --save`` (see ``repro.cli``).
XML_BUNDLE_FORMAT = "repro/xml-transformation@1"


def _version_key(version: str) -> Tuple:
    """Order versions numerically when possible, lexicographically else."""
    try:
        return (0, int(version), "")
    except ValueError:
        return (1, 0, version)


def _parse_model_filename(path: Path) -> Tuple[str, str]:
    """``NAME@VERSION.json`` → ``(NAME, VERSION)``; bare names get ``1``."""
    stem = path.stem
    if "@" in stem:
        name, _, version = stem.partition("@")
    else:
        name, version = stem, "1"
    if not name or not version:
        raise RegistryError(
            f"model filename {path.name!r} must look like NAME.json or "
            f"NAME@VERSION.json"
        )
    return name, version


class ModelEntry:
    """One live model: machine, codecs, and its (lazy) worker service.

    The entry knows how to parse a request document, translate a batch,
    and render an outcome — the batcher and the protocol handlers stay
    format-agnostic.  ``acquire``/``release`` bracket every use; a
    retired entry tears down its engine handle and pool as soon as the
    last holder releases it.
    """

    def __init__(
        self,
        name: str,
        version: str,
        path: Path,
        kind: str,
        machine: DTOP,
        transformation=None,
        jobs: Optional[int] = None,
        fingerprint: Optional[Tuple[int, int]] = None,
        backend: Optional[str] = None,
    ):
        self.name = name
        self.version = version
        self.path = path
        self.kind = kind
        self.machine = machine
        self.transformation = transformation
        self.jobs = max(1, jobs or 1)
        self.fingerprint = fingerprint
        #: Resolved execution backend name this model serves on.
        self.backend = backend if backend is not None else resolve_backend()
        self.requests = 0
        self._service = None
        self._refs = 0
        self._retired = False
        self._closed = False
        self._quarantined = False

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    # -- lifecycle ------------------------------------------------------

    def acquire(self) -> "ModelEntry":
        """Pin the entry: retirement defers until the last release."""
        self._refs += 1
        return self

    def release(self) -> None:
        self._refs -= 1
        if self._retired and self._refs <= 0:
            self.close()

    def retire(self) -> None:
        """Mark the entry stale; close now unless requests still hold it."""
        self._retired = True
        if self._refs <= 0:
            self.close()

    @property
    def retired(self) -> bool:
        return self._retired

    def close(self) -> None:
        """Drop the compiled-engine handle and shut the worker pool down.

        Idempotent.  ``clear_caches`` is the library-wide invalidation
        contract: any service still pointing at the machine re-packs on
        its next dispatch instead of serving stale tables.
        """
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            self._service.close()
            self._service = None
        self.machine.clear_caches()

    # -- serving --------------------------------------------------------

    # -- supervision ----------------------------------------------------

    @property
    def quarantined(self) -> bool:
        return self._quarantined

    def set_quarantined(self, quarantined: bool) -> None:
        """Quarantine (or restore) the entry's sharded worker pool.

        A quarantined entry keeps serving — :meth:`run_batch` degrades
        to the in-process engine, trading the shard's capacity for not
        feeding a flapping pool — and its service is torn down so no
        worker processes linger.  Restoring simply clears the flag; the
        next dispatch (or a supervised :meth:`restart_service`) builds
        a fresh pool.
        """
        if quarantined == self._quarantined:
            return
        self._quarantined = quarantined
        if quarantined and self._service is not None:
            self._service.close()
            self._service = None

    def peek_service(self):
        """The live service if one exists — never creates one."""
        return self._service

    def restart_service(self) -> bool:
        """Supervised pool restart: replace a broken pool, prestarted.

        Returns ``True`` when a sharded pool is live (and warm) after
        the call; ``False`` for in-process, closed, or quarantined
        entries (nothing to restart).
        """
        if self._closed or self._quarantined or self.jobs <= 1:
            return False
        service = self.service()
        return service is not None and service.restart()

    def service(self):
        """The entry's sharded :class:`TransformService` (``jobs > 1``).

        Quarantined entries answer ``None`` — callers fall back to the
        in-process engine exactly as for an unsharded entry.
        """
        if self.jobs <= 1 or self._quarantined:
            return None
        if self._closed:
            # Never resurrect a pool on a torn-down entry: close() has
            # already run, so nothing would ever shut the new pool down.
            raise ServiceError(f"model {self.key} has been unloaded")
        if self._service is None:
            from repro.serve import TransformService

            self._service = TransformService(
                self.machine, jobs=self.jobs, backend=self.backend
            )
        return self._service

    def parse_document(self, text: str) -> Union[Tree, UTree]:
        """Parse one request document in the model's input syntax."""
        if self.kind == KIND_DTOP:
            return parse_term(text)
        return parse_xml(text, ignore_attributes=True)

    def render_output(self, outcome) -> str:
        """Render one successful outcome in the model's output syntax."""
        if self.kind == KIND_DTOP:
            return str(outcome)
        return serialize_xml(outcome)

    def render_packed(self, outcome: Tree) -> Dict[str, object]:
        """Render a transducer outcome as flat DAG records.

        The postorder ``(label, child-index…)`` table of
        :func:`repro.serve.shard.encode_forest`: one record per
        *distinct* subtree, so heavily shared outputs (an audit machine
        checking one document under many states, say) cost their DAG
        size on the wire, not their tree size — and the encoding is
        iterative, so arbitrarily deep outputs are servable where the
        recursive term renderer would overflow.
        """
        from repro.serve.shard import encode_forest

        records, roots = encode_forest([outcome])
        return {"records": records, "root": roots[0]}

    def run_batch(self, documents: List) -> List:
        """Translate a coalesced batch; per-document outcomes.

        Outcomes are output trees or exception instances — one bad
        document never fails the batch (the engine and
        ``XMLTransformation.apply_batch`` both report per document).
        """
        self.requests += len(documents)
        service = self.service()
        if self.kind == KIND_XML:
            return self.transformation.apply_batch(
                documents, service=service, backend=self.backend
            )
        if service is not None:
            return service.run_batch_outcomes(documents)
        return engine_for(self.machine, self.backend).run_batch_outcomes(
            documents
        )

    def describe(self) -> Dict[str, object]:
        info = {
            "model": self.key,
            "kind": self.kind,
            "path": str(self.path),
            "jobs": self.jobs,
            "backend": self.backend,
            "states": len(self.machine.states),
            "rules": len(self.machine.rules),
            "requests": self.requests,
        }
        if self._quarantined:
            info["quarantined"] = True
        if self._service is not None:
            info["service"] = self._service.stats
        return info


def _load_entry(
    path: Path, jobs: Optional[int], default_backend: Optional[str] = None
) -> ModelEntry:
    name, version = _parse_model_filename(path)
    stat = path.stat()
    fingerprint = (stat.st_mtime_ns, stat.st_size)
    # One read, one JSON parse; the loaders below work on the parsed
    # data (a large bundle must not be read and parsed twice per reload,
    # and a single read narrows the window for catching a mid-write
    # file whose fingerprint no longer matches its content).
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise RegistryError(f"cannot read model {path.name}: {error}") from None
    # Per-model backend pin: an artifact's "backend" key beats the
    # server-wide default, which beats REPRO_BACKEND, which beats
    # "tables".  Validated here so a typo (or a backend whose dependency
    # is missing on this host) fails this one file's load — per-file
    # isolation on reload — instead of the first request.
    artifact_backend = data.get("backend") if isinstance(data, dict) else None
    try:
        backend = resolve_backend(artifact_backend, default_backend)
    except BackendError as error:
        raise RegistryError(
            f"cannot load model {path.name}: {error}"
        ) from None
    format_key = data.get("format") if isinstance(data, dict) else None
    if format_key == XML_BUNDLE_FORMAT:
        from repro.cli import transformation_from_bundle

        try:
            transformation = transformation_from_bundle(data)
        except (ReproError, KeyError) as error:
            raise RegistryError(
                f"cannot load model {path.name}: {error}"
            ) from None
        return ModelEntry(
            name,
            version,
            path,
            KIND_XML,
            transformation.transducer,
            transformation=transformation,
            jobs=jobs,
            fingerprint=fingerprint,
            backend=backend,
        )
    try:
        machine = serialize_from_data(data)
    except ReproError as error:
        raise RegistryError(
            f"cannot load model {path.name}: {error}"
        ) from None
    if not isinstance(machine, DTOP):
        raise RegistryError(
            f"model {path.name} holds a "
            f"{type(machine).__name__}, not a transducer"
        )
    return ModelEntry(
        name, version, path, KIND_DTOP, machine, jobs=jobs,
        fingerprint=fingerprint, backend=backend,
    )


class ModelRegistry:
    """Load, resolve, and hot-reload the models of one directory."""

    def __init__(
        self,
        models_dir: Union[str, Path],
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        self.models_dir = Path(models_dir)
        self.jobs = jobs
        #: Server-wide default backend; per-model artifacts override it.
        self.backend = backend
        self._entries: Dict[str, ModelEntry] = {}
        self._stats = {
            "loads": 0,
            "reloads": 0,
            "drops": 0,
            "failed_loads": 0,
            "lookups": 0,
            "misses": 0,
        }
        self._closed = False
        if not self.models_dir.is_dir():
            raise RegistryError(
                f"model directory {self.models_dir} does not exist"
            )
        # Boot is strict: a registry must not come up half-loaded (a
        # *reload* of a running registry isolates per-file failures
        # instead — see reload()).
        summary = self.reload()
        if summary["failed"]:
            self.close()
            raise RegistryError(
                "cannot load model directory "
                f"{self.models_dir}: {'; '.join(summary['failed'])}"
            )

    # -- loading --------------------------------------------------------

    def reload(self) -> Dict[str, List[str]]:
        """Rescan the directory; returns what happened per model key.

        Unchanged files keep their live entries (and pools).  Changed
        and removed files retire the old entry — deferred teardown, see
        the module docstring — and changed files load a fresh one.

        Failures are isolated **per file**: a half-written or corrupt
        artifact never retires the entry that is still serving (the old
        version keeps answering requests, and a later reload retries
        the file), never blocks other files' changes from committing,
        and is reported under ``summary["failed"]`` as
        ``"key: reason"`` lines — the server records these in metrics
        (``repro_reload_total{outcome="failed"}``) and the structured
        log.  Only registry-level corruption (an unreadable directory,
        two files claiming one ``name@version``) aborts the whole
        reload with the live table untouched.
        """
        if self._closed:
            raise RegistryError("registry is closed")
        summary: Dict[str, List[str]] = {
            "loaded": [],
            "reloaded": [],
            "kept": [],
            "dropped": [],
            "failed": [],
        }
        # Two-phase: load everything first, then commit + retire — a
        # failure mid-scan must not leave a half-committed table.
        seen: Dict[str, ModelEntry] = {}
        to_retire: List[ModelEntry] = []
        for path in sorted(self.models_dir.glob("*.json"), key=lambda p: p.name):
            name, version = _parse_model_filename(path)
            key = f"{name}@{version}"
            if key in seen:
                raise RegistryError(
                    f"duplicate model {key}: {seen[key].path.name} and "
                    f"{path.name}"
                )
            old = self._entries.get(key)
            stat = path.stat()
            if old is not None and old.fingerprint == (
                stat.st_mtime_ns,
                stat.st_size,
            ):
                seen[key] = old
                summary["kept"].append(key)
                continue
            try:
                seen[key] = _load_entry(path, self.jobs, self.backend)
            except RegistryError as error:
                summary["failed"].append(f"{key}: {error}")
                if old is not None:
                    # Keep serving the version that was live; the stale
                    # fingerprint makes the next reload retry the file.
                    seen[key] = old
                continue
            if old is None:
                summary["loaded"].append(key)
            else:
                to_retire.append(old)
                summary["reloaded"].append(key)
        for key, entry in self._entries.items():
            if key not in seen:
                to_retire.append(entry)
                summary["dropped"].append(key)
        self._entries = seen
        self._stats["loads"] += len(summary["loaded"])
        self._stats["reloads"] += len(summary["reloaded"])
        self._stats["drops"] += len(summary["dropped"])
        self._stats["failed_loads"] += len(summary["failed"])
        for old in to_retire:
            old.retire()
        return summary

    # -- resolution -----------------------------------------------------

    def get(self, key: str) -> ModelEntry:
        """Resolve ``name@version`` (exact) or ``name`` (highest version)."""
        if self._closed:
            raise RegistryError("registry is closed")
        self._stats["lookups"] += 1
        if "@" in key:
            entry = self._entries.get(key)
            if entry is None:
                self._stats["misses"] += 1
                raise ModelNotFoundError(
                    f"no model {key!r} in {self.models_dir} "
                    f"(available: {', '.join(sorted(self._entries)) or 'none'})"
                )
            return entry
        candidates = [
            entry for entry in self._entries.values() if entry.name == key
        ]
        if not candidates:
            self._stats["misses"] += 1
            raise ModelNotFoundError(
                f"no model named {key!r} in {self.models_dir} "
                f"(available: {', '.join(sorted(self._entries)) or 'none'})"
            )
        return max(candidates, key=lambda e: _version_key(e.version))

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> Iterable[ModelEntry]:
        return list(self._entries.values())

    def describe(self) -> List[Dict[str, object]]:
        return [self._entries[key].describe() for key in self.keys()]

    @property
    def stats(self) -> Dict[str, int]:
        return {**self._stats, "models": len(self._entries)}

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Retire every entry and shut their pools down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for entry in self._entries.values():
            entry.retire()
        self._entries = {}

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
